#include "serve/scheduler.hh"

#include "common/logging.hh"
#include "common/units.hh"

#include <algorithm>

namespace vdnn::serve
{

const char *
schedPolicyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::FifoExclusive:
        return "fifo-exclusive";
      case SchedPolicy::RoundRobin:
        return "round-robin";
      case SchedPolicy::ShortestRemaining:
        return "shortest-remaining";
      case SchedPolicy::PackedOverlap:
        return "packed-overlap";
    }
    return "?";
}

SchedulerConfig::SchedulerConfig() : gpu(gpu::titanXMaxwell()) {}

Scheduler::Scheduler(SchedulerConfig config)
    : cfg(std::move(config)), rt(cfg.gpu, cfg.contention),
      pool(cfg.gpu.dramCapacity, cfg.gpu.name + " shared pool"),
      host(cfg.gpu.hostCapacity),
      poolTrack([this] { return rt.now(); }, cfg.keepTimeline),
      cudnn(cfg.gpu), admission(pool.capacity(), cfg.admissionSafety),
      inflight(cfg.keepTimeline)
{
    VDNN_ASSERT(cfg.maxJobsInFlight >= 0,
                "maxJobsInFlight must be >= 0");
    pool.setTracker(&poolTrack);
    inflight.record(rt.now(), 0.0);
    // Packed overlap keeps several tenants' iterations in flight at
    // once, so their transient working sets must be reserved together.
    admission.setOverlapTransients(cfg.policy ==
                                   SchedPolicy::PackedOverlap);
}

JobId
Scheduler::submit(JobSpec spec)
{
    VDNN_ASSERT(!ran, "submit() after run()");
    VDNN_ASSERT(spec.network && spec.network->finalized(),
                "job needs a finalized network");
    VDNN_ASSERT(spec.iterations >= 1,
                "job needs at least one iteration");
    VDNN_ASSERT(spec.arrival >= 0, "negative arrival time");
    auto job = std::make_unique<Job>();
    job->id = JobId(jobs.size());
    job->spec = std::move(spec);
    if (job->spec.name.empty())
        job->spec.name = strFormat("job%d", job->id);
    // Resolve the deprecated enum pair into a planner once, here, so
    // admission and session setup agree on the plan source.
    if (!job->spec.planner) {
        job->spec.planner = core::plannerForPolicy(
            job->spec.policy, job->spec.algoMode, job->spec.exec);
    }
    jobs.push_back(std::move(job));
    return jobs.back()->id;
}

void
Scheduler::collectArrivals()
{
    std::vector<JobId> arrived;
    for (const auto &job : jobs) {
        if (job->record.state == JobState::Pending &&
            job->spec.arrival <= rt.now()) {
            arrived.push_back(job->id);
        }
    }
    std::sort(arrived.begin(), arrived.end(),
              [this](JobId a, JobId b) {
                  const Job &ja = *jobs[std::size_t(a)];
                  const Job &jb = *jobs[std::size_t(b)];
                  if (ja.spec.arrival != jb.spec.arrival)
                      return ja.spec.arrival < jb.spec.arrival;
                  return a < b;
              });
    for (JobId id : arrived) {
        jobs[std::size_t(id)]->record.state = JobState::Queued;
        queue.push(id);
    }
}

const FootprintEstimate &
Scheduler::estimateFor(const Job &job)
{
    auto it = estimates.find(job.id);
    if (it == estimates.end()) {
        // Budget for the planner's most conservative plan, derived
        // against the whole device (the reservation must hold however
        // crowded the pool is when the job finally runs).
        it = estimates
                 .emplace(job.id,
                          estimatePlannerFootprint(
                              *job.spec.network, cudnn,
                              *job.spec.planner,
                              core::PlannerContext::exclusive(
                                  cfg.gpu, cfg.contention)))
                 .first;
    }
    return it->second;
}

bool
Scheduler::tryAdmit(Job &job, const FootprintEstimate &est)
{
    core::SessionConfig scfg;
    scfg.planner = job.spec.planner;
    scfg.gpu = cfg.gpu;
    scfg.contention = cfg.contention;
    scfg.exec = job.spec.exec;
    core::SharedGpu shared;
    shared.runtime = &rt;
    shared.pool = &pool;
    shared.host = &host;
    shared.clientId = job.id;
    job.session = std::make_unique<core::Session>(*job.spec.network,
                                                  scfg, shared);
    if (!job.session->setup()) {
        // The estimate said fit; the allocator disagreed
        // (fragmentation or estimate error).
        job.record.failReason = job.session->failReason();
        job.session.reset();
        return false;
    }
    admission.admit(job.id, est, job.reserveScale);
    job.record.state = JobState::Running;
    if (job.record.admitTime == kTimeNone)
        job.record.admitTime = rt.now();
    job.record.persistentBytes =
        std::max(job.record.persistentBytes,
                 job.session->persistentBytes());
    running.push_back(job.id);
    recordInflight();
    return true;
}

void
Scheduler::admitFromQueue()
{
    std::size_t i = 0;
    while (i < queue.size()) {
        Job &job = *jobs[std::size_t(queue.at(i))];
        const FootprintEstimate &est = estimateFor(job);
        // Feasibility includes any OOM-backoff inflation: a job whose
        // grown reservation no longer fits even an empty device must
        // go terminal here, or it would sit in the queue forever.
        if (!admission.feasible(est, job.reserveScale)) {
            queue.take(i);
            job.record.state = JobState::Rejected;
            job.record.finishTime = rt.now();
            job.record.failReason = strFormat(
                "reservation %s exceeds device capacity %s",
                formatBytes(
                    admission.reservationFor(est, job.reserveScale))
                    .c_str(),
                formatBytes(admission.capacity()).c_str());
            continue;
        }
        if (cfg.maxJobsInFlight > 0 &&
            int(running.size()) >= cfg.maxJobsInFlight) {
            break;
        }
        if (cfg.policy == SchedPolicy::FifoExclusive &&
            !running.empty()) {
            break;
        }
        if (!admission.canAdmit(est, job.reserveScale)) {
            if (cfg.policy != SchedPolicy::FifoExclusive) {
                // Backfill: a smaller job further back may still fit.
                ++i;
                continue;
            }
            break; // strict arrival order for FIFO
        }
        if (tryAdmit(job, est)) {
            queue.take(i);
            continue;
        }
        // Setup OOM despite a fitting reservation: grow the
        // reservation and retry later, give up after a few attempts.
        ++job.record.oomRequeues;
        job.reserveScale *= cfg.oomBackoffScale;
        if (job.record.oomRequeues > cfg.maxOomRequeues) {
            std::string why = job.record.failReason;
            queue.take(i);
            job.record.state = JobState::Failed;
            job.record.finishTime = rt.now();
            job.record.failReason =
                "admission gave up after repeated setup OOM: " + why;
            continue;
        }
        ++i;
    }
}

void
Scheduler::finishJob(Job &job, JobState final_state,
                     const std::string &why)
{
    VDNN_ASSERT(job.record.state == JobState::Running,
                "finishing job %d in state %s", job.id,
                jobStateName(job.record.state));
    job.record.peakPoolBytes = pool.peakByClient(job.id);
    job.record.offloadedBytes = job.session->memory().offloadedBytes();
    job.session->teardown();
    job.session.reset();
    admission.release(job.id);

    auto it = std::find(running.begin(), running.end(), job.id);
    VDNN_ASSERT(it != running.end(), "job %d not running", job.id);
    std::size_t idx = std::size_t(it - running.begin());
    running.erase(it);
    if (idx < rrCursor)
        --rrCursor;
    recordInflight();

    job.record.state = final_state;
    job.record.finishTime = rt.now();
    job.record.failReason = why;
}

void
Scheduler::evictForRequeue(Job &job)
{
    ++job.record.oomRequeues;
    job.reserveScale *= cfg.oomBackoffScale;
    std::string why = job.session->failReason();
    if (job.record.oomRequeues > cfg.maxOomRequeues) {
        finishJob(job, JobState::Failed,
                  "gave up after repeated iteration OOM: " + why);
        return;
    }
    finishJob(job, JobState::Queued, why);
    // Not terminal: the finish timestamp belongs to real completion.
    job.record.finishTime = kTimeNone;
    // Head of the queue: the job keeps its arrival-order priority.
    queue.pushFront(job.id);
}

Job *
Scheduler::pickNext()
{
    VDNN_ASSERT(!running.empty(), "pickNext() with nothing running");
    if (cfg.policy == SchedPolicy::FifoExclusive)
        return jobs[std::size_t(running.front())].get();
    if (cfg.policy == SchedPolicy::ShortestRemaining) {
        Job *best = nullptr;
        for (JobId id : running) {
            Job *j = jobs[std::size_t(id)].get();
            int rem = j->spec.iterations - j->record.itersDone;
            if (!best ||
                rem < best->spec.iterations - best->record.itersDone) {
                best = j;
            }
        }
        return best;
    }
    if (rrCursor >= running.size())
        rrCursor = 0;
    return jobs[std::size_t(running[rrCursor++])].get();
}

void
Scheduler::recordInflight()
{
    inflight.record(rt.now(), double(running.size()));
    peakInflight = std::max(peakInflight, int(running.size()));
}

TimeNs
Scheduler::nextArrivalAfter(TimeNs t) const
{
    TimeNs next = kTimeNone;
    for (const auto &job : jobs) {
        if (job->record.state != JobState::Pending)
            continue;
        if (job->spec.arrival > t &&
            (next == kTimeNone || job->spec.arrival < next)) {
            next = job->spec.arrival;
        }
    }
    return next;
}

bool
Scheduler::allDone() const
{
    for (const auto &job : jobs) {
        if (!job->done())
            return false;
    }
    return true;
}

void
Scheduler::chargeIteration(Job &job, const core::IterationResult &r)
{
    ++job.record.itersDone;
    // Service time is derived solely from the iteration's own
    // [start, end) window, never from scheduler wall time: host
    // advances between iterations — in particular advancing the device
    // clock to the next sparse arrival while a job sits admitted with
    // no iteration in flight — must not be billed to any tenant.
    job.record.serviceTime += r.makespan();
}

void
Scheduler::runInterleaved()
{
    while (!allDone()) {
        collectArrivals();
        admitFromQueue();

        if (running.empty()) {
            TimeNs next = nextArrivalAfter(rt.now());
            if (next == kTimeNone) {
                // Nothing running, nothing admissible, nothing still
                // to arrive: every queued job was terminal-handled.
                break;
            }
            rt.advanceTo(next);
            continue;
        }

        Job &job = *pickNext();
        core::IterationResult r = job.session->runIteration();
        if (r.ok) {
            chargeIteration(job, r);
            if (job.record.itersDone >= job.spec.iterations)
                finishJob(job, JobState::Finished);
        } else {
            // In-flight OOM: overcommit or fragmentation beyond the
            // reservation. Only this job's iteration aborts.
            evictForRequeue(job);
        }
    }
}

void
Scheduler::runPacked()
{
    // Op-granularity packing: every admitted tenant owns a resumable
    // IterationStepper over its compiled IterationProgram. One pass of
    // the loop offers each tenant a single step; a tenant blocked on a
    // stream join (its offload or prefetch still in flight) is skipped
    // rather than allowed to stall the host, so the next tenant's
    // compute op dispatches under the blocked tenant's DMA. Only when
    // *every* admitted tenant is blocked does the host advance the
    // device clock — by exactly one event, so whichever tenant
    // unblocks first resumes first.
    while (!allDone()) {
        collectArrivals();
        admitFromQueue();

        if (running.empty()) {
            TimeNs next = nextArrivalAfter(rt.now());
            if (next == kTimeNone)
                break;
            rt.advanceTo(next);
            continue;
        }

        bool progress = false;
        std::vector<JobId> round = running;
        for (JobId id : round) {
            Job &job = *jobs[std::size_t(id)];
            if (job.record.state != JobState::Running)
                continue; // finished or evicted earlier in this round
            core::IterationStepper *st = job.session->activeStepper();
            if (!st)
                st = &job.session->beginIteration();
            core::IterationStepper::Status s =
                st->step(/*blocking=*/false);
            if (s == core::IterationStepper::Status::Blocked)
                continue;
            progress = true;
            if (!st->finished())
                continue;
            core::IterationResult r = job.session->completeIteration();
            if (r.ok) {
                chargeIteration(job, r);
                if (job.record.itersDone >= job.spec.iterations)
                    finishJob(job, JobState::Finished);
            } else {
                evictForRequeue(job);
            }
        }

        if (!progress) {
            // Every admitted tenant is blocked on in-flight device
            // work; there must be a pending completion to run.
            bool advanced = rt.stepDevice();
            VDNN_ASSERT(advanced,
                        "all tenants blocked with an empty event queue");
        }
    }
}

ServeReport
Scheduler::run()
{
    VDNN_ASSERT(!ran, "run() called twice");
    ran = true;

    if (cfg.policy == SchedPolicy::PackedOverlap)
        runPacked();
    else
        runInterleaved();

    return buildReport();
}

ServeReport
Scheduler::buildReport()
{
    inflight.finish(rt.now());
    poolTrack.finish();

    ServeReport rep;
    rep.schedulerName = schedPolicyName(cfg.policy);
    rep.gpuName = cfg.gpu.name;
    rep.poolCapacity = pool.capacity();
    rep.peakJobsInFlight = peakInflight;
    rep.avgJobsInFlight = inflight.average();
    rep.poolPeakBytes = poolTrack.peakBytes();
    rep.poolAvgBytes = poolTrack.averageBytes();
    rep.computeBusyTime = rt.computeBusyTime();
    rep.copyBusyTime = rt.copyBusyTime(gpu::CopyDir::DeviceToHost) +
                       rt.copyBusyTime(gpu::CopyDir::HostToDevice);
    if (cfg.keepTimeline) {
        rep.poolTimeline = poolTrack.signal().timeline();
        rep.inflightTimeline = inflight.timeline();
    }

    TimeNs first_arrival = kTimeNone;
    TimeNs last_finish = 0;
    for (const auto &job : jobs) {
        const JobRecord &rec = job->record;
        JobOutcome out;
        out.id = job->id;
        out.name = job->spec.name;
        out.configName = job->spec.planner->name();
        out.state = rec.state;
        out.arrival = job->spec.arrival;
        out.admitTime = rec.admitTime;
        out.finishTime = rec.finishTime;
        out.queueingDelay = job->queueingDelay();
        out.completionTime = rec.state == JobState::Finished
                                 ? job->completionTime()
                                 : 0;
        out.serviceTime = rec.serviceTime;
        out.iterations = rec.itersDone;
        out.oomRequeues = rec.oomRequeues;
        out.persistentBytes = rec.persistentBytes;
        out.peakPoolBytes = rec.peakPoolBytes;
        out.offloadedBytes = rec.offloadedBytes;
        out.failReason = rec.failReason;
        rep.jobs.push_back(std::move(out));

        if (first_arrival == kTimeNone ||
            job->spec.arrival < first_arrival) {
            first_arrival = job->spec.arrival;
        }
        if (rec.finishTime != kTimeNone)
            last_finish = std::max(last_finish, rec.finishTime);
    }
    if (first_arrival != kTimeNone && last_finish > first_arrival)
        rep.makespan = last_finish - first_arrival;
    return rep;
}

} // namespace vdnn::serve
