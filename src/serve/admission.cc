#include "serve/admission.hh"

#include "common/logging.hh"
#include "dnn/conv_algo.hh"
#include "net/network_stats.hh"

#include <algorithm>
#include <cmath>

namespace vdnn::serve
{

namespace
{

/** Distinct buffers a layer touches as inputs (concat joins repeat). */
std::vector<net::BufferId>
inputBuffers(const net::Network &net, net::LayerId id)
{
    std::vector<net::BufferId> out;
    for (net::LayerId in_id : net.node(id).inputs) {
        net::BufferId b = in_id == net::kInputLayer
                              ? net.inputBuffer()
                              : net.node(in_id).yBuffer;
        if (std::find(out.begin(), out.end(), b) == out.end())
            out.push_back(b);
    }
    return out;
}

} // namespace

FootprintEstimate
estimateFootprint(const net::Network &net, const dnn::CudnnSim &cudnn,
                  const core::MemoryPlan &plan)
{
    VDNN_ASSERT(net.finalized(), "network must be finalized");
    VDNN_ASSERT(plan.buffers.size() == net.numBuffers() &&
                    plan.algos.size() == net.numLayers(),
                "plan does not match the network");

    net::NetworkStats stats(net, cudnn);

    FootprintEstimate est;

    // Persistent state, mirroring Executor::setup(): all weights, one
    // shared dW per region, the static classifier block.
    Bytes max_dw_managed = 0;
    Bytes max_dw_classifier = 0;
    for (net::LayerId id : net.topoOrder()) {
        const net::LayerNode &n = net.node(id);
        Bytes w = n.spec.weightBytes();
        est.persistent += w;
        (n.classifier ? max_dw_classifier : max_dw_managed) = std::max(
            n.classifier ? max_dw_classifier : max_dw_managed, w);
    }
    est.persistent += max_dw_managed + max_dw_classifier;
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        if (net.buffer(b).classifier)
            est.persistent += net.buffer(b).bytes();
    }
    est.persistent += stats.peakGradientBytesScoped(
        net::NetworkStats::GradScope::Classifier);

    if (plan.staticAllocation) {
        // Network-wide static allocation: every feature map, the reused
        // gradient peak and the shared max workspace are all persistent
        // (Baseline holds them even between iterations).
        for (net::BufferId b = 0; b < net::BufferId(net.numBuffers());
             ++b) {
            if (!net.buffer(b).classifier)
                est.persistent += net.buffer(b).bytes();
        }
        est.persistent += stats.peakGradientBytesScoped(
            net::NetworkStats::GradScope::Managed);
        est.persistent += stats.maxWorkspaceBytes(plan.algos, false);
        return est;
    }

    // Managed buffers the plan does *not* offload stay resident from
    // their forward definition to their last backward use; they are
    // part of every layer's instantaneous residency.
    Bytes resident = 0;
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        const net::Buffer &buf = net.buffer(b);
        if (!buf.classifier && !plan.offloads(b) &&
            !buf.bwdUsers.empty()) {
            resident += buf.bytes();
        }
    }

    // Largest instantaneous working set over the managed layers. The
    // forward set holds X, Y and workspace; the backward set holds the
    // gradients dY/dX plus whichever of X/Y the layer's backward
    // kernels read. Overlapped prefetches need no reservation: they
    // are opportunistic (skipped or evicted whenever a mandatory
    // allocation needs the space).
    Bytes max_working = 0;
    for (net::LayerId id : net.topoOrder()) {
        const net::LayerNode &n = net.node(id);
        if (n.classifier)
            continue;
        Bytes ws = n.spec.kind == dnn::LayerKind::Conv
                       ? dnn::convWorkspaceBytes(
                             plan.algos[std::size_t(id)], n.spec)
                       : 0;
        std::vector<net::BufferId> ins = inputBuffers(net, id);
        Bytes x_bytes = 0;
        for (net::BufferId b : ins)
            x_bytes += net.buffer(b).bytes();
        Bytes y_bytes =
            n.spec.inPlace() ? 0 : net.buffer(n.yBuffer).bytes();

        Bytes fwd = ws + x_bytes + y_bytes;

        Bytes bwd = ws;
        bwd += net.buffer(n.yBuffer).bytes(); // dY
        for (net::BufferId b : ins) {
            if (b != net.inputBuffer())
                bwd += net.buffer(b).bytes(); // dX
        }
        if (n.spec.backwardNeedsX())
            bwd += x_bytes;
        if (n.spec.backwardNeedsY() && !n.spec.inPlace())
            bwd += net.buffer(n.yBuffer).bytes();

        max_working = std::max({max_working, fwd, bwd});
    }

    est.transient = resident + max_working;
    return est;
}

FootprintEstimate
estimatePlannerFootprint(const net::Network &net,
                         const dnn::CudnnSim &cudnn,
                         core::Planner &planner,
                         const core::PlannerContext &ctx)
{
    return estimateFootprint(net, cudnn,
                             planner.admissionPlan(net, ctx));
}

AdmissionController::AdmissionController(Bytes capacity, double safety_)
    : cap(capacity), safety(safety_)
{
    VDNN_ASSERT(capacity > 0, "admission capacity must be positive");
    VDNN_ASSERT(safety_ >= 1.0, "safety factor must be >= 1");
}

Bytes
AdmissionController::transientArena() const
{
    Bytes t = 0;
    for (const auto &[id, r] : reservations) {
        if (overlapTransients)
            t += r.transient;
        else
            t = std::max(t, r.transient);
    }
    return t;
}

Bytes
AdmissionController::reservationFor(const FootprintEstimate &est,
                                    double scale) const
{
    return Bytes(std::ceil(double(est.total()) * safety * scale));
}

bool
AdmissionController::fits(const Reservation &r) const
{
    Bytes arena = overlapTransients
                      ? transientArena() + r.transient
                      : std::max(transientArena(), r.transient);
    return persistentSum + r.persistent + arena <= cap;
}

bool
AdmissionController::canAdmit(const FootprintEstimate &est,
                              double scale) const
{
    double s = safety * scale;
    Reservation r;
    r.persistent = Bytes(std::ceil(double(est.persistent) * s));
    r.transient = Bytes(std::ceil(double(est.transient) * s));
    return fits(r);
}

bool
AdmissionController::feasible(const FootprintEstimate &est,
                              double scale) const
{
    return reservationFor(est, scale) <= cap;
}

void
AdmissionController::admit(JobId id, const FootprintEstimate &est,
                           double scale)
{
    double s = safety * scale;
    Reservation r;
    r.persistent = Bytes(std::ceil(double(est.persistent) * s));
    r.transient = Bytes(std::ceil(double(est.transient) * s));
    auto [it, inserted] = reservations.emplace(id, r);
    VDNN_ASSERT(inserted, "job %d admitted twice", id);
    persistentSum += r.persistent;
}

void
AdmissionController::release(JobId id)
{
    auto it = reservations.find(id);
    if (it != reservations.end()) {
        persistentSum -= it->second.persistent;
        reservations.erase(it);
        return;
    }
    auto ev = evictedLedger.find(id);
    VDNN_ASSERT(ev != evictedLedger.end(),
                "releasing unadmitted job %d", id);
    evictedLedger.erase(ev);
}

void
AdmissionController::evict(JobId id)
{
    auto it = reservations.find(id);
    VDNN_ASSERT(it != reservations.end(),
                "evicting unadmitted job %d", id);
    persistentSum -= it->second.persistent;
    auto [ev, inserted] = evictedLedger.emplace(id, it->second);
    VDNN_ASSERT(inserted, "job %d already on the evicted ledger", id);
    (void)ev;
    reservations.erase(it);
}

bool
AdmissionController::canReadmit(JobId id) const
{
    auto ev = evictedLedger.find(id);
    VDNN_ASSERT(ev != evictedLedger.end(),
                "readmit query for non-evicted job %d", id);
    return fits(ev->second);
}

void
AdmissionController::readmit(JobId id)
{
    auto ev = evictedLedger.find(id);
    VDNN_ASSERT(ev != evictedLedger.end(),
                "readmitting non-evicted job %d", id);
    auto [it, inserted] = reservations.emplace(id, ev->second);
    VDNN_ASSERT(inserted, "job %d already resident", id);
    (void)it;
    persistentSum += ev->second.persistent;
    evictedLedger.erase(ev);
}

Bytes
AdmissionController::updateReservation(JobId id,
                                       const FootprintEstimate &measured,
                                       double scale)
{
    auto it = reservations.find(id);
    VDNN_ASSERT(it != reservations.end(),
                "profile update for non-resident job %d", id);
    double s = safety * scale;
    Reservation m;
    m.persistent = Bytes(std::ceil(double(measured.persistent) * s));
    m.transient = Bytes(std::ceil(double(measured.transient) * s));

    Reservation &r = it->second;
    Bytes before = r.persistent + r.transient;
    Bytes new_persistent = std::min(r.persistent, m.persistent);
    persistentSum += new_persistent - r.persistent;
    r.persistent = new_persistent;
    r.transient = std::min(r.transient, m.transient);
    return before - (r.persistent + r.transient);
}

Bytes
AdmissionController::reservedBytes() const
{
    return persistentSum + transientArena();
}

} // namespace vdnn::serve
