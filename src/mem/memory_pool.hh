/**
 * @file
 * cnmem-style GPU memory pool.
 *
 * The CUDA library only supports synchronous cudaMalloc/cudaFree, which
 * force device-wide synchronization; vDNN therefore reserves the whole
 * physical GPU capacity up front and sub-allocates from a host-side pool
 * (NVIDIA cnmem, reference [37] of the paper). This class reproduces
 * that allocator: a fixed arena managed with a best-fit free list,
 * block splitting, and coalescing of adjacent free blocks. Offsets stand
 * in for device pointers; no memory is actually backed.
 *
 * Out-of-memory is an *expected* outcome for some (network, policy,
 * algorithm) configurations — it is exactly what the paper's `*` marks
 * denote — so allocation failure is reported via std::optional rather
 * than an error path, and the failure details are retained for
 * diagnostics (OomInfo).
 */

#ifndef VDNN_MEM_MEMORY_POOL_HH
#define VDNN_MEM_MEMORY_POOL_HH

#include "common/types.hh"
#include "mem/usage_tracker.hh"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

namespace vdnn::mem
{

/** Handle to a live pool allocation. */
struct Allocation
{
    std::int64_t id = -1;
    Bytes offset = 0;
    Bytes size = 0;

    bool valid() const { return id >= 0; }
};

/** Details of the most recent failed allocation. */
struct OomInfo
{
    Bytes requested = 0;
    Bytes totalFree = 0;
    Bytes largestFree = 0;
    std::string tag;
    /** Arena map at the failure, for fragmentation diagnostics. */
    std::string layout;
};

class MemoryPool
{
  public:
    /** Allocation granularity; cnmem aligns to 512-byte boundaries. */
    static constexpr Bytes kAlignment = 512;

    /**
     * Placement segregation: allocations at or above the large
     * threshold (a fixed fraction of the arena) are carved from the
     * *high* end of the chosen free block, everything else from the
     * low end. This dlmalloc-style discipline keeps ordinary transient
     * allocations (workspaces, mid-size feature maps, classifier
     * tensors) from peppering the region the giant-class buffers (the
     * first conv groups' multi-GiB feature and gradient maps) must
     * repeatedly fit into. Without it, a long-running training pool
     * fragments and giant reallocation requests fail despite ample
     * total free space — trainability near the capacity limit (VGG-16
     * (256) on 12 GB) hinges on this.
     */
    static constexpr int kLargeFraction = 6; ///< large = capacity/6

    /**
     * @param capacity arena size (the physical GPU memory reserved)
     * @param name     used in diagnostics
     */
    MemoryPool(Bytes capacity, std::string name = "pool");

    MemoryPool(const MemoryPool &) = delete;
    MemoryPool &operator=(const MemoryPool &) = delete;

    /**
     * Best-fit allocation of @p size bytes (rounded up to kAlignment).
     * @param tag free-form label kept for diagnostics / leak reports
     * @param client tenant id charged for the block (multi-tenant
     *        serving shares one pool among many jobs; 0 = sole tenant)
     * @return std::nullopt when no free block fits (details in lastOom())
     */
    std::optional<Allocation> tryAllocate(Bytes size,
                                          const std::string &tag = "",
                                          int client = 0);

    /** tryAllocate() that treats failure as a fatal user error. */
    Allocation allocate(Bytes size, const std::string &tag = "",
                        int client = 0);

    /** Return an allocation to the pool; coalesces with neighbours. */
    void release(const Allocation &alloc);

    /** Release every live allocation (between training iterations). */
    void releaseAll();

    Bytes capacity() const { return cap; }
    Bytes usedBytes() const { return used; }
    Bytes freeBytes() const { return cap - used; }
    Bytes largestFreeBlock() const;
    std::size_t liveAllocations() const { return live.size(); }
    std::size_t freeBlockCount() const { return freeBlocks.size(); }
    Bytes peakUsage() const { return peak; }

    // --- per-tenant accounting -------------------------------------------
    /** Live bytes charged to @p client. */
    Bytes usedByClient(int client) const;
    /** Peak bytes ever charged to @p client. */
    Bytes peakByClient(int client) const;
    /** Number of clients with live allocations. */
    std::size_t activeClients() const;

    const OomInfo &lastOom() const { return oom; }
    const std::string &name() const { return poolName; }

    /** Attach a tracker notified on every usage change (may be null). */
    void setTracker(UsageTracker *tracker);

    /** Internal consistency check (tests): free + live covers the arena. */
    bool checkInvariants() const;

    /** Human-readable arena map (offset-ordered blocks with tags). */
    std::string layoutString() const;

  private:
    struct LiveBlock
    {
        Bytes offset;
        Bytes size;
        std::string tag;
        int client = 0;
    };

    struct ClientUsage
    {
        Bytes used = 0;
        Bytes peak = 0;
    };

    void notify();

    Bytes cap;
    Bytes largeThreshold;
    std::string poolName;
    Bytes used = 0;
    Bytes peak = 0;
    std::int64_t nextId = 1;
    /** offset -> size, ordered so coalescing can look at neighbours. */
    std::map<Bytes, Bytes> freeBlocks;
    std::unordered_map<std::int64_t, LiveBlock> live;
    std::unordered_map<int, ClientUsage> clients;
    OomInfo oom;
    UsageTracker *usageTracker = nullptr;
};

} // namespace vdnn::mem

#endif // VDNN_MEM_MEMORY_POOL_HH
