#include "stats/accumulator.hh"

#include <algorithm>
#include <cmath>

namespace vdnn::stats
{

void
Accumulator::add(double v)
{
    if (n == 0) {
        minVal = maxVal = v;
    } else {
        minVal = std::min(minVal, v);
        maxVal = std::max(maxVal, v);
    }
    ++n;
    total += v;
    double delta = v - meanVal;
    meanVal += delta / double(n);
    m2 += delta * (v - meanVal);
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel variance combination.
    double delta = other.meanVal - meanVal;
    std::uint64_t combined = n + other.n;
    m2 += other.m2 +
          delta * delta * double(n) * double(other.n) / double(combined);
    meanVal = (meanVal * double(n) + other.meanVal * double(other.n)) /
              double(combined);
    total += other.total;
    minVal = std::min(minVal, other.minVal);
    maxVal = std::max(maxVal, other.maxVal);
    n = combined;
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::min() const
{
    return n ? minVal : 0.0;
}

double
Accumulator::max() const
{
    return n ? maxVal : 0.0;
}

double
Accumulator::mean() const
{
    return n ? meanVal : 0.0;
}

double
Accumulator::variance() const
{
    return n >= 2 ? m2 / double(n) : 0.0;
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

} // namespace vdnn::stats
