/**
 * @file
 * Tests for the IterationProgram IR and the resumable stepper: compile
 * shape, static specialization, dump, drain-mode golden equivalence
 * against the pre-refactor monolithic executor, and non-blocking
 * stepping producing the identical device timeline.
 */

#include "core/executor.hh"
#include "core/iteration_program.hh"
#include "core/planner.hh"
#include "core/training_session.hh"

#include "common/units.hh"
#include "net/builders.hh"

#include <gtest/gtest.h>

#include <memory>

using namespace vdnn;
using namespace vdnn::core;

namespace
{

MemoryPlan
planFor(const net::Network &net, Planner &&planner)
{
    return planner.plan(net,
                        PlannerContext::exclusive(gpu::titanXMaxwell()));
}

int
countOps(const IterationProgram &p, OpKind kind)
{
    int n = 0;
    for (const IterOp &op : p.ops)
        n += op.kind == kind ? 1 : 0;
    return n;
}

} // namespace

TEST(IterationProgram, CompileShapeBracketsEveryLayer)
{
    auto network = net::buildTinyCnn(16);
    MemoryPlan plan = planFor(
        *network, OffloadAllPlanner(AlgoPreference::MemoryOptimal));
    IterationProgram p =
        IterationProgram::compile(*network, plan, ExecutorConfig{});

    ASSERT_FALSE(p.ops.empty());
    EXPECT_EQ(p.ops.front().kind, OpKind::BeginIteration);
    EXPECT_EQ(p.ops.back().kind, OpKind::EndIteration);
    EXPECT_EQ(countOps(p, OpKind::Barrier), 1);

    // Every layer gets a forward and a backward Kernel/Sync/Release
    // triple, in forward then reverse topological order.
    int layers = int(network->numLayers());
    EXPECT_EQ(countOps(p, OpKind::Kernel), 2 * layers);
    EXPECT_EQ(countOps(p, OpKind::Sync), 2 * layers);
    EXPECT_EQ(countOps(p, OpKind::Release), 2 * layers);

    // The offload set is non-empty under vDNN_all, and so is the
    // prefetch coverage of the backward phase.
    EXPECT_GT(countOps(p, OpKind::Offload), 0);
    EXPECT_GT(countOps(p, OpKind::Prefetch), 0);

    // Forward ops precede the barrier; backward ops follow it.
    bool seen_barrier = false;
    for (const IterOp &op : p.ops) {
        if (op.kind == OpKind::Barrier) {
            seen_barrier = true;
            continue;
        }
        if (op.kind == OpKind::BeginIteration ||
            op.kind == OpKind::EndIteration) {
            continue;
        }
        EXPECT_EQ(op.backward, seen_barrier);
    }
}

TEST(IterationProgram, StaticPlanCompilesAwayMemoryTraffic)
{
    auto network = net::buildTinyCnn(16);
    MemoryPlan plan = planFor(
        *network, BaselinePlanner(AlgoPreference::MemoryOptimal));
    IterationProgram p =
        IterationProgram::compile(*network, plan, ExecutorConfig{});

    EXPECT_EQ(countOps(p, OpKind::Offload), 0);
    EXPECT_EQ(countOps(p, OpKind::Prefetch), 0);
    EXPECT_EQ(countOps(p, OpKind::OnDemandFetch), 0);
    // Backward Allocs are dead too: gradients live in the static
    // region.
    for (const IterOp &op : p.ops) {
        if (op.kind == OpKind::Alloc) {
            EXPECT_FALSE(op.backward);
        }
    }
}

TEST(IterationProgram, PrefetchSpecializedOutWhenDisabled)
{
    auto network = net::buildTinyCnn(16);
    MemoryPlan plan = planFor(
        *network, OffloadAllPlanner(AlgoPreference::MemoryOptimal));
    ExecutorConfig cfg;
    cfg.prefetchEnabled = false;
    IterationProgram p = IterationProgram::compile(*network, plan, cfg);
    EXPECT_EQ(countOps(p, OpKind::Prefetch), 0);
    EXPECT_GT(countOps(p, OpKind::OnDemandFetch), 0);
}

TEST(IterationProgram, DumpListsEveryOp)
{
    auto network = net::buildTinyCnn(16);
    MemoryPlan plan = planFor(
        *network, OffloadAllPlanner(AlgoPreference::MemoryOptimal));
    IterationProgram p =
        IterationProgram::compile(*network, plan, ExecutorConfig{});
    std::string dump = p.dump(*network);
    EXPECT_NE(dump.find("begin"), std::string::npos);
    EXPECT_NE(dump.find("offload"), std::string::npos);
    EXPECT_NE(dump.find("prefetch"), std::string::npos);
    EXPECT_NE(dump.find("end"), std::string::npos);
    // One line per op.
    std::size_t lines = 0;
    for (char c : dump)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, p.ops.size());
}

// --- golden equivalence -----------------------------------------------------

namespace
{

SessionConfig
vggAllConfig()
{
    SessionConfig cfg;
    cfg.planner = std::make_shared<OffloadAllPlanner>(
        AlgoPreference::MemoryOptimal);
    cfg.iterations = 2;
    return cfg;
}

} // namespace

TEST(StepperEquivalence, DrainModeMatchesLegacyGoldenOnVgg16)
{
    // Golden numbers recorded from the pre-refactor monolithic
    // executor (VGG-16 (64), vDNN_all (m), Titan X, 2 iterations).
    // The step machine must reproduce them exactly.
    auto network = net::buildVgg16(64);
    SessionResult r = runSession(*network, vggAllConfig());
    ASSERT_TRUE(r.trainable);
    EXPECT_EQ(r.iterationTime, 3230943807LL);
    EXPECT_EQ(r.featureExtractionTime, 3213061240LL);
    EXPECT_EQ(r.transferStallTime, 222438258LL);
    EXPECT_EQ(r.pcieBytesPerIter, 8464891904LL);
    EXPECT_EQ(r.offloads, 22);
    EXPECT_EQ(r.prefetches, 22);
    EXPECT_EQ(r.onDemandFetches, 0);
}

TEST(StepperEquivalence, NonBlockingSteppingMatchesDrainOnVgg16)
{
    auto network = net::buildVgg16(64);

    // Reference: the blocking drain loop (runSession).
    SessionResult drained = runSession(*network, vggAllConfig());
    ASSERT_TRUE(drained.trainable);

    // Same experiment, but every iteration is driven op by op in
    // non-blocking mode: whenever the stepper reports Blocked, the
    // device clock is advanced one event at a time — the path the
    // packed-overlap scheduler takes.
    Session session(*network, vggAllConfig());
    ASSERT_TRUE(session.setup());
    for (int i = 0; i < 2; ++i) {
        IterationStepper &st = session.beginIteration();
        while (!st.finished()) {
            IterationStepper::Status s = st.step(/*blocking=*/false);
            if (s == IterationStepper::Status::Blocked) {
                ASSERT_TRUE(session.runtime().stepDevice());
            }
        }
        ASSERT_EQ(st.status(), IterationStepper::Status::Done);
        session.completeIteration();
    }
    session.teardown();
    SessionResult stepped = session.result();
    ASSERT_TRUE(stepped.trainable);

    EXPECT_EQ(stepped.iterationTime, drained.iterationTime);
    EXPECT_EQ(stepped.featureExtractionTime,
              drained.featureExtractionTime);
    EXPECT_EQ(stepped.transferStallTime, drained.transferStallTime);
    EXPECT_EQ(stepped.pcieBytesPerIter, drained.pcieBytesPerIter);
    EXPECT_EQ(stepped.offloads, drained.offloads);
    EXPECT_EQ(stepped.prefetches, drained.prefetches);

    // Layer-by-layer identical windows.
    ASSERT_EQ(stepped.layerTimings.size(), drained.layerTimings.size());
    for (std::size_t i = 0; i < drained.layerTimings.size(); ++i) {
        EXPECT_EQ(stepped.layerTimings[i].fwdStart,
                  drained.layerTimings[i].fwdStart);
        EXPECT_EQ(stepped.layerTimings[i].fwdEnd,
                  drained.layerTimings[i].fwdEnd);
        EXPECT_EQ(stepped.layerTimings[i].bwdStart,
                  drained.layerTimings[i].bwdStart);
        EXPECT_EQ(stepped.layerTimings[i].bwdEnd,
                  drained.layerTimings[i].bwdEnd);
    }
}

TEST(Stepper, BlockedReportsTheJoinedStream)
{
    auto network = net::buildTinyCnn(16);
    SessionConfig cfg;
    cfg.planner = std::make_shared<OffloadAllPlanner>(
        AlgoPreference::MemoryOptimal);
    Session session(*network, cfg);
    ASSERT_TRUE(session.setup());

    IterationStepper &st = session.beginIteration();
    bool saw_blocked = false;
    while (!st.finished()) {
        IterationStepper::Status s = st.step(/*blocking=*/false);
        if (s == IterationStepper::Status::Blocked) {
            saw_blocked = true;
            EXPECT_GE(st.blockedStream(), 0);
            ASSERT_TRUE(session.runtime().stepDevice());
        }
    }
    // A kernel launch always outlives the instant host, so at least
    // one Sync boundary must have reported Blocked.
    EXPECT_TRUE(saw_blocked);
    EXPECT_TRUE(session.completeIteration().ok);
    session.teardown();
}
