#include "gpu/cluster.hh"

#include "common/logging.hh"

namespace vdnn::gpu
{

ClusterSpec
homogeneousCluster(const GpuSpec &spec, int count, bool contention)
{
    VDNN_ASSERT(count >= 1, "a cluster needs at least one device");
    ClusterSpec cs;
    cs.devices.assign(std::size_t(count), spec);
    cs.contention = contention;
    return cs;
}

Cluster::Cluster(ClusterSpec spec)
{
    VDNN_ASSERT(!spec.devices.empty(),
                "a cluster needs at least one device");
    nodes.reserve(spec.devices.size());
    for (std::size_t i = 0; i < spec.devices.size(); ++i) {
        const GpuSpec &gs = spec.devices[i];
        Node n;
        n.dev = std::make_unique<Device>(int(i), gs, eq,
                                         spec.contention);
        n.pool = std::make_unique<mem::MemoryPool>(
            gs.dramCapacity,
            strFormat("%s[%zu] shared pool", gs.name.c_str(), i));
        n.host = std::make_unique<mem::PinnedHostAllocator>(
            gs.hostCapacity);
        nodes.push_back(std::move(n));
    }
}

Device &
Cluster::device(int i)
{
    VDNN_ASSERT(i >= 0 && i < deviceCount(), "bad device id %d", i);
    return *nodes[std::size_t(i)].dev;
}

const Device &
Cluster::device(int i) const
{
    VDNN_ASSERT(i >= 0 && i < deviceCount(), "bad device id %d", i);
    return *nodes[std::size_t(i)].dev;
}

mem::MemoryPool &
Cluster::pool(int i)
{
    VDNN_ASSERT(i >= 0 && i < deviceCount(), "bad device id %d", i);
    return *nodes[std::size_t(i)].pool;
}

mem::PinnedHostAllocator &
Cluster::host(int i)
{
    VDNN_ASSERT(i >= 0 && i < deviceCount(), "bad device id %d", i);
    return *nodes[std::size_t(i)].host;
}

Bytes
Cluster::totalCapacity() const
{
    Bytes total = 0;
    for (const Node &n : nodes)
        total += n.pool->capacity();
    return total;
}

void
Cluster::finishPowerWindows()
{
    for (Node &n : nodes)
        n.dev->finishPowerWindow();
}

void
Cluster::setTelemetry(obs::Telemetry t)
{
    for (Node &n : nodes)
        n.dev->setTelemetry(t);
}

void
Cluster::setWakeHook(Device::WakeHook hook, void *ctx)
{
    for (Node &n : nodes)
        n.dev->setWakeHook(hook, ctx);
}

} // namespace vdnn::gpu
