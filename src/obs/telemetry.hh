/**
 * @file
 * Telemetry hookup: the pair of optional sinks a component records to.
 *
 * Components hold a Telemetry by value; null members mean "off". The
 * struct is intentionally two raw pointers so passing it around and
 * checking it costs nothing on the hot path.
 */

#ifndef VDNN_OBS_TELEMETRY_HH
#define VDNN_OBS_TELEMETRY_HH

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace vdnn::obs
{

struct Telemetry
{
    TraceRecorder *trace = nullptr;
    MetricsRegistry *metrics = nullptr;

    bool tracing() const { return trace && trace->enabled(); }
};

} // namespace vdnn::obs

#endif // VDNN_OBS_TELEMETRY_HH
