#include "core/dynamic_policy.hh"

#include "common/logging.hh"

#include <algorithm>

namespace vdnn::core
{

DynamicPolicy::DynamicPolicy(const net::Network &net_,
                             const dnn::CudnnSim &cudnn_,
                             gpu::GpuSpec spec, ExecutorConfig exec_config,
                             bool contention_)
    : net(net_), cudnn(cudnn_), gpu(std::move(spec)),
      execCfg(exec_config), contention(contention_)
{}

TrialRecord
DynamicPolicy::trial(const Plan &plan, const std::string &what,
                     IterationResult *detail)
{
    TrialRecord rec;
    rec.description = what;

    gpu::Runtime rt(gpu, contention);
    MemoryManager mm(rt);
    Executor ex(net, cudnn, rt, mm, plan, execCfg);
    if (!ex.setup()) {
        rec.passed = false;
        rec.failReason =
            strFormat("setup OOM ('%s', requested %lld bytes)",
                      mm.pool().lastOom().tag.c_str(),
                      (long long)mm.pool().lastOom().requested);
        return rec;
    }
    IterationResult res = ex.runIteration();
    rec.passed = res.ok;
    rec.makespan = res.makespan();
    rec.failReason = res.failReason;
    if (detail)
        *detail = res;
    ex.teardown();
    return rec;
}

Plan
DynamicPolicy::noOffloadPlan(AlgoMode mode) const
{
    // Layer-wise vDNN execution with an empty offload set: feature maps
    // stay resident, but allocation is still per layer (workspace is
    // transient, dead buffers are released).
    Plan plan = makeStaticPlan(net, cudnn, TransferPolicy::OffloadConv,
                               mode);
    plan.policy = TransferPolicy::Dynamic;
    std::fill(plan.offloadBuffer.begin(), plan.offloadBuffer.end(),
              false);
    plan.provenance = strFormat("dyn: no offload %s", algoModeName(mode));
    return plan;
}

bool
DynamicPolicy::greedy(TransferPolicy policy, DynamicResult &result)
{
    // Start from the fastest algorithm everywhere and locally downgrade
    // the overflowing layer until the configuration fits (or a
    // non-workspace allocation fails, which algorithms cannot fix).
    Plan plan = makeStaticPlan(net, cudnn, policy,
                               AlgoMode::PerformanceOptimal);
    plan.algoMode = AlgoMode::PerLayer;

    for (int round = 0; round < kMaxGreedyTrials; ++round) {
        IterationResult detail;
        TrialRecord rec =
            trial(plan,
                  strFormat("greedy %s round %d",
                            transferPolicyName(policy), round),
                  &detail);
        result.trials.push_back(rec);
        if (rec.passed) {
            plan.policy = TransferPolicy::Dynamic;
            plan.provenance = strFormat(
                "dyn: greedy %s (%d downgrade rounds)",
                transferPolicyName(policy), round);
            result.plan = plan;
            result.trainable = true;
            return true;
        }
        if (detail.failKind != FailKind::Workspace ||
            detail.failLayer == net::kInputLayer) {
            return false; // algorithms cannot fix this overflow
        }
        // Downgrade: next fastest algorithm with strictly smaller
        // workspace than the one that overflowed.
        const auto &spec = net.node(detail.failLayer).spec;
        dnn::ConvAlgo cur = plan.algos[std::size_t(detail.failLayer)];
        Bytes cur_ws = dnn::convWorkspaceBytes(cur, spec);
        if (cur_ws <= 0)
            return false; // already at the zero-workspace floor
        dnn::ConvAlgo next = dnn::kMemoryOptimalAlgo;
        for (const auto &perf : cudnn.findConvAlgorithms(spec)) {
            if (perf.workspace < cur_ws) {
                next = perf.algo;
                break;
            }
        }
        plan.algos[std::size_t(detail.failLayer)] = next;
    }
    return false;
}

DynamicResult
DynamicPolicy::derive()
{
    DynamicResult result;

    // Pass 1: the least-memory configuration decides trainability.
    Plan all_m = makeStaticPlan(net, cudnn, TransferPolicy::OffloadAll,
                                AlgoMode::MemoryOptimal);
    TrialRecord base = trial(all_m, "vDNN_all (m) trainability probe");
    result.trials.push_back(base);
    if (!base.passed) {
        result.trainable = false;
        result.plan = all_m;
        result.plan.policy = TransferPolicy::Dynamic;
        result.plan.provenance = "dyn: untrainable";
        return result;
    }

    // Pass 2: fastest algorithms, no offload — the performance ideal.
    Plan fast = noOffloadPlan(AlgoMode::PerformanceOptimal);
    TrialRecord fast_rec = trial(fast, "no offload (p)");
    result.trials.push_back(fast_rec);
    if (fast_rec.passed) {
        result.trainable = true;
        result.plan = fast;
        return result;
    }

    // Pass 3: fastest algorithms with static offload sets.
    for (TransferPolicy policy :
         {TransferPolicy::OffloadConv, TransferPolicy::OffloadAll}) {
        Plan p = makeStaticPlan(net, cudnn, policy,
                                AlgoMode::PerformanceOptimal);
        TrialRecord rec =
            trial(p, strFormat("%s (p)", transferPolicyName(policy)));
        result.trials.push_back(rec);
        if (rec.passed) {
            result.trainable = true;
            result.plan = p;
            result.plan.policy = TransferPolicy::Dynamic;
            result.plan.provenance =
                strFormat("dyn: %s (p)", transferPolicyName(policy));
            return result;
        }
    }

    // Pass 4: greedy per-layer downgrade under conv, then all.
    if (greedy(TransferPolicy::OffloadConv, result))
        return result;
    if (greedy(TransferPolicy::OffloadAll, result))
        return result;

    // Pass 5: fall back to the known-good least-memory configuration.
    result.trainable = true;
    result.plan = all_m;
    result.plan.policy = TransferPolicy::Dynamic;
    result.plan.provenance = "dyn: fallback vDNN_all (m)";
    return result;
}

} // namespace vdnn::core
