/**
 * @file
 * Ablation: layer-boundary synchronization and DRAM contention.
 *
 * (1) The paper synchronizes stream_compute and stream_memory at the
 * end of every offloading layer so the device copy is released before
 * the next layer starts — maximizing memory savings at the cost of the
 * Fig. 9 "wasted time". The alternative releases asynchronously when
 * the copy completes: faster when offloads outlive their layers, but
 * the release lands later, so peak usage grows.
 *
 * (2) The paper bounds vDNN's DRAM interference with compute at
 * 16/336 = 4.7% (Section V-B). Disabling the contention model bounds
 * the modelled cost from the other side.
 */

#include "bench_common.hh"

#include "common/units.hh"

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

core::SessionResult
runSync(const net::Network &network, bool sync_at_boundary)
{
    core::SessionConfig cfg;
    cfg.planner =
        offloadAllPlanner(core::AlgoPreference::MemoryOptimal);
    cfg.exec.syncAtLayerBoundary = sync_at_boundary;
    return core::runSession(network, cfg);
}

core::SessionResult
runContention(const net::Network &network, bool contention)
{
    core::SessionConfig cfg;
    cfg.planner =
        offloadAllPlanner(core::AlgoPreference::PerformanceOptimal);
    cfg.contention = contention;
    return core::runSession(network, cfg);
}

void
report()
{
    stats::Table sync_table("Ablation: offload release at layer "
                            "boundary (sync) vs asynchronous");
    sync_table.setColumns({"network", "variant", "fe latency (ms)",
                           "stall (ms)", "max managed (MiB)",
                           "avg managed (MiB)"});

    double sync_ms = 0.0, async_ms = 0.0;
    double sync_max = 0.0, async_max = 0.0;
    for (const char *name : {"AlexNet (128)", "VGG-16 (128)"}) {
        auto network = std::string(name) == "AlexNet (128)"
                           ? net::buildAlexNet(128)
                           : net::buildVgg16(128);
        for (bool sync : {true, false}) {
            auto r = runSync(*network, sync);
            if (std::string(name) == "VGG-16 (128)") {
                (sync ? sync_ms : async_ms) =
                    toMs(r.featureExtractionTime);
                (sync ? sync_max : async_max) = toMiB(r.maxManagedUsage);
            }
            sync_table.addRow(
                {name, sync ? "sync (paper)" : "async release",
                 stats::Table::cell(toMs(r.featureExtractionTime), 1),
                 stats::Table::cell(toMs(r.transferStallTime), 1),
                 stats::Table::cell(toMiB(r.maxManagedUsage), 0),
                 stats::Table::cell(toMiB(r.avgManagedUsage), 0)});
        }
    }
    sync_table.print();

    stats::Table cont_table("Ablation: DRAM contention model "
                            "(vDNN_all (p))");
    cont_table.setColumns({"network", "contention", "fe latency (ms)",
                           "slowdown"});
    double worst_contention = 0.0;
    for (const char *name : {"VGG-16 (64)", "VGG-16 (128)"}) {
        auto network = std::string(name) == "VGG-16 (64)"
                           ? net::buildVgg16(64)
                           : net::buildVgg16(128);
        auto with = runContention(*network, true);
        auto without = runContention(*network, false);
        double slowdown = double(with.featureExtractionTime) /
                              double(without.featureExtractionTime) -
                          1.0;
        worst_contention = std::max(worst_contention, slowdown);
        cont_table.addRow(
            {name, "on",
             stats::Table::cell(toMs(with.featureExtractionTime), 1),
             stats::Table::cellPercent(slowdown)});
        cont_table.addRow(
            {name, "off",
             stats::Table::cell(toMs(without.featureExtractionTime), 1),
             "-"});
    }
    cont_table.print();

    stats::Comparison cmp("Sync / contention ablation");
    cmp.addBool("async release is at least as fast as sync", true,
                async_ms <= sync_ms + 1e-9);
    cmp.addBool("sync release never uses more memory than async", true,
                sync_max <= async_max + 1.0);
    cmp.addBool("DRAM contention cost within the 4.7% bound", true,
                worst_contention <= 0.047 + 1e-9);
    cmp.addInfo("measured contention cost", "<= 4.7%",
                strFormat("%.2f%%", 100.0 * worst_contention));
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("ablation/async_release_vgg16_128", [] {
        auto network = net::buildVgg16(128);
        benchmark::DoNotOptimize(runSync(*network, false).iterationTime);
    });
    return benchMain(argc, argv, report);
}
