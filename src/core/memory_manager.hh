/**
 * @file
 * The vDNN runtime memory manager.
 *
 * Owns the GPU-side cnmem pool (sized to the device's physical
 * capacity, Section III-B), the pinned host allocator targeted by
 * offload, and the location state machine of every feature-map buffer:
 *
 *     Unallocated -> Device -> Offloading -> Host -> Prefetching -> Device
 *
 * Two usage signals are tracked against the simulated clock: the total
 * pool usage, and the *managed* usage (total minus the constant
 * classifier block), which is the quantity Figs. 11/12 report.
 */

#ifndef VDNN_CORE_MEMORY_MANAGER_HH
#define VDNN_CORE_MEMORY_MANAGER_HH

#include "common/types.hh"
#include "gpu/runtime.hh"
#include "mem/memory_pool.hh"
#include "mem/pinned_host.hh"
#include "mem/usage_tracker.hh"
#include "net/network.hh"

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace vdnn::core
{

/** Where a feature-map buffer currently lives. */
enum class Residence : std::uint8_t
{
    Unallocated,
    Device,
    Offloading, ///< device copy valid, D2H transfer in flight
    Host,       ///< device copy released
    Prefetching ///< H2D transfer in flight, device copy filling
};

class MemoryManager
{
  public:
    /**
     * Exclusive mode: reserve the whole device for this manager (the
     * pool and pinned host allocator are created and owned here).
     * @param runtime     simulated CUDA runtime (provides the clock)
     * @param keep_timeline retain the full usage timeline for plotting
     */
    MemoryManager(gpu::Runtime &runtime, bool keep_timeline = false);

    /**
     * Multi-tenant mode: sub-allocate from a device pool and pinned
     * host allocator shared with other tenants. Every allocation is
     * charged to @p client in the pool's per-tenant accounting; the
     * total-usage tracker then follows this tenant's usage only.
     */
    MemoryManager(gpu::Runtime &runtime, mem::MemoryPool &shared_pool,
                  mem::PinnedHostAllocator &shared_host, int client,
                  bool keep_timeline = false);

    // --- raw tagged allocations (weights, gradients, workspace) ----------
    /**
     * Allocate from the GPU pool.
     * @param managed counts toward the vDNN-managed usage signal
     * @return nullopt on pool exhaustion (trainability failure)
     */
    std::optional<mem::Allocation>
    allocDevice(Bytes bytes, const std::string &tag, bool managed);

    void releaseDevice(const mem::Allocation &alloc, bool managed);

    // --- buffer residence tracking -----------------------------------------
    /** Materialize @p buffer on the device. */
    bool allocBuffer(const net::Network &net, net::BufferId buffer);

    /**
     * Mark an offload in flight (device copy still valid). Allocates
     * the pinned host staging buffer; fails (returning false, leaving
     * the buffer device-resident) when host memory is exhausted.
     */
    bool beginOffload(const net::Network &net, net::BufferId buffer);

    /** Offload done: release the device copy, data now host-resident. */
    void finishOffload(const net::Network &net, net::BufferId buffer);

    /** Begin a prefetch: re-materialize the device copy. */
    bool beginPrefetch(const net::Network &net, net::BufferId buffer);

    /**
     * Prefetch done. The pinned host copy is *retained*: feature maps
     * are read-only once produced, so the host copy stays valid and
     * the device copy can later be dropped for free (evictToHost)
     * should memory pressure demand it.
     */
    void finishPrefetch(net::BufferId buffer);

    /**
     * Drop the device copy of a prefetched-but-unconsumed buffer,
     * reverting it to Host residence without any transfer (the pinned
     * host copy is still valid). Used to satisfy mandatory allocations
     * when the pool is fragmented or exhausted near the capacity
     * limit.
     */
    void evictToHost(const net::Network &net, net::BufferId buffer);

    /** Device-resident buffer that still has a valid host copy? */
    bool hostCopyValid(net::BufferId buffer) const;

    /** Release a device-resident buffer (no further reuse). */
    void releaseBuffer(const net::Network &net, net::BufferId buffer);

    /** Drop the pinned host copy of a Host-resident buffer. */
    void dropHostCopy(net::BufferId buffer);

    /**
     * Force a buffer back to Unallocated from any state, releasing
     * device and host copies. All transfers touching it must have been
     * drained (deviceSynchronize) beforehand. Used on aborted
     * iterations.
     */
    void forceRelease(const net::Network &net, net::BufferId buffer);

    Residence residence(net::BufferId buffer) const;

    // --- accounting ------------------------------------------------------------
    mem::MemoryPool &pool() { return *gpuPool; }
    mem::PinnedHostAllocator &host() { return *hostAlloc; }

    /** Tenant id this manager charges pool allocations to. */
    int clientId() const { return client; }

    /** Device bytes currently held by *this* manager (== pool usage in
     *  exclusive mode; one tenant's share in multi-tenant mode). */
    Bytes deviceUsage() const { return deviceBytes; }

    Bytes managedUsage() const { return managedBytes; }
    const mem::UsageTracker &totalTracker() const { return *totalTrack; }
    const mem::UsageTracker &managedTracker() const
    {
        return *managedTrack;
    }

    /** Close both usage windows at the current simulated time. */
    void finishTracking();

    /** Cumulative bytes offloaded to host (Fig. 12). */
    Bytes offloadedBytes() const { return offloadTotal; }

  private:
    struct BufferState
    {
        Residence residence = Residence::Unallocated;
        mem::Allocation device;
        mem::HostAllocation host;
        /** The pinned host copy holds valid data. */
        bool hostValid = false;
    };

    void initTrackers(bool keep_timeline);
    void touchManaged();
    /** Grow the state table to cover @p buffer and return its state. */
    BufferState &stateFor(net::BufferId buffer);

    gpu::Runtime &runtime;
    /** Owned in exclusive mode; null when sharing another's pool. */
    std::unique_ptr<mem::MemoryPool> ownedPool;
    std::unique_ptr<mem::PinnedHostAllocator> ownedHost;
    mem::MemoryPool *gpuPool = nullptr;
    mem::PinnedHostAllocator *hostAlloc = nullptr;
    std::unique_ptr<mem::UsageTracker> totalTrack;
    std::unique_ptr<mem::UsageTracker> managedTrack;
    /**
     * Indexed by BufferId (small dense ids from the network builder):
     * residence() sits on the executor's per-op hot path, so lookups
     * are an indexed load rather than a hash probe.
     */
    std::vector<BufferState> bufferStates;
    int client = 0;
    Bytes deviceBytes = 0;
    Bytes managedBytes = 0;
    Bytes offloadTotal = 0;
};

} // namespace vdnn::core

#endif // VDNN_CORE_MEMORY_MANAGER_HH
