/**
 * @file
 * Simulated CUDA runtime — the single-GPU façade over gpu::Device.
 *
 * Historically this header defined the whole execution substrate; the
 * engine now lives in gpu/device.hh so that a multi-GPU `Cluster`
 * (gpu/cluster.hh) can own several devices on one shared simulated
 * clock. A `Runtime` is exactly a self-clocked `Device` — the
 * construction every single-device call site has always used — so the
 * classic API (streams, events, kernels, async copies, synchronize)
 * and its timing behavior are unchanged.
 */

#ifndef VDNN_GPU_RUNTIME_HH
#define VDNN_GPU_RUNTIME_HH

#include "gpu/device.hh"

namespace vdnn::gpu
{

/** One self-clocked simulated GPU (device 0 of an implicit cluster). */
using Runtime = Device;

} // namespace vdnn::gpu

#endif // VDNN_GPU_RUNTIME_HH
