#include "obs/metrics.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace vdnn::obs
{

Counter &
MetricsRegistry::counter(const std::string &name)
{
    auto &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

void
MetricsRegistry::gauge(const std::string &name, std::function<double()> sample)
{
    gauges[name] = std::move(sample);
}

stats::Histogram &
MetricsRegistry::histogram(const std::string &name, double lo, double hi,
                           std::size_t buckets)
{
    auto &slot = histograms[name];
    if (!slot)
        slot = std::make_unique<stats::Histogram>(lo, hi, buckets);
    return *slot;
}

stats::Accumulator &
MetricsRegistry::accumulator(const std::string &name)
{
    auto &slot = accums[name];
    if (!slot)
        slot = std::make_unique<stats::Accumulator>();
    return *slot;
}

std::size_t
MetricsRegistry::size() const
{
    return counters.size() + gauges.size() + histograms.size() +
           accums.size();
}

namespace
{

/** JSON number; maps non-finite values to 0 (JSON has no NaN/Inf). */
void
writeNum(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    char out[40];
    std::snprintf(out, sizeof(out), "%.9g", v);
    os << out;
}

} // namespace

void
MetricsRegistry::writeSnapshot(std::ostream &os, TimeNs now) const
{
    os << "{\"sim_time_ns\":" << now;
    os << ",\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters) {
        os << (first ? "" : ",") << "\"" << name << "\":";
        writeNum(os, c->value());
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, fn] : gauges) {
        os << (first ? "" : ",") << "\"" << name << "\":";
        writeNum(os, fn ? fn() : 0.0);
        first = false;
    }
    os << "},\"accumulators\":{";
    first = true;
    for (const auto &[name, a] : accums) {
        os << (first ? "" : ",") << "\"" << name << "\":{\"count\":"
           << a->count() << ",\"mean\":";
        writeNum(os, a->mean());
        os << ",\"min\":";
        writeNum(os, a->min());
        os << ",\"max\":";
        writeNum(os, a->max());
        os << ",\"stddev\":";
        writeNum(os, a->stddev());
        os << "}";
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms) {
        os << (first ? "" : ",") << "\"" << name << "\":{\"count\":"
           << h->count() << ",\"p50\":";
        writeNum(os, h->quantile(0.50));
        os << ",\"p95\":";
        writeNum(os, h->quantile(0.95));
        os << ",\"p99\":";
        writeNum(os, h->quantile(0.99));
        os << "}";
        first = false;
    }
    os << "}}\n";
}

std::string
MetricsRegistry::snapshotJson(TimeNs now) const
{
    std::ostringstream os;
    writeSnapshot(os, now);
    return os.str();
}

bool
MetricsRegistry::writeJsonFile(const std::string &path, TimeNs now) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeSnapshot(os, now);
    return bool(os);
}

} // namespace vdnn::obs
