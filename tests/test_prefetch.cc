/**
 * @file
 * Tests for the findPrefetchLayer algorithm (Figure 10) against the
 * paper's pseudo code semantics: nearest-first search, the
 * offloaded-and-not-prefetched predicate, the CONV-bounded window, and
 * the generalization to fork/join graphs.
 */

#include "core/prefetch.hh"

#include "dnn/layer.hh"
#include "net/builders.hh"
#include "net/network.hh"

#include <gtest/gtest.h>

using namespace vdnn;
using namespace vdnn::core;
using namespace vdnn::dnn;
using namespace vdnn::net;

namespace
{

/** conv1 relu1 conv2 relu2 pool1 conv3 relu3 loss — VGG-flavoured. */
std::unique_ptr<Network>
chainNet()
{
    TensorShape in{2, 8, 16, 16};
    auto net = std::make_unique<Network>("chain", in);
    ConvParams cp;
    cp.outChannels = 8;
    cp.padH = cp.padW = 1;
    auto shape = [&]() {
        return net->node(LayerId(net->numLayers() - 1)).spec.out;
    };
    net->append(makeConv("conv1", in, cp));            // 0
    net->append(makeActivation("relu1", shape()));     // 1
    net->append(makeConv("conv2", shape(), cp));       // 2
    net->append(makeActivation("relu2", shape()));     // 3
    net->append(makePool("pool1", shape(), PoolParams{})); // 4
    net->append(makeConv("conv3", shape(), cp));       // 5
    net->append(makeActivation("relu3", shape()));     // 6
    net->append(makeSoftmaxLoss("loss", shape()));     // 7
    net->finalize();
    return net;
}

/** Mark layer @p id's X buffer offloaded. */
void
offloadXOf(const Network &net, PrefetchState &state, LayerId id)
{
    state.offloaded[std::size_t(net.node(id).xBuffer)] = true;
}

} // namespace

TEST(FindPrefetchLayer, FindsNearestOffloadedLayer)
{
    auto net = chainNet();
    PrefetchState state(net->numBuffers());
    offloadXOf(*net, state, 0); // conv1's X (the input)
    offloadXOf(*net, state, 2); // conv2's X
    offloadXOf(*net, state, 5); // conv3's X

    // Searching from the loss layer: conv3 (nearest) wins.
    auto cand = findPrefetchLayer(*net, 7, state);
    ASSERT_TRUE(cand.found());
    EXPECT_EQ(cand.layer, 5);
    ASSERT_EQ(cand.buffers.size(), 1u);
    EXPECT_EQ(cand.buffers[0], net->node(5).xBuffer);
}

TEST(FindPrefetchLayer, MarksBuffersPrefetched)
{
    auto net = chainNet();
    PrefetchState state(net->numBuffers());
    offloadXOf(*net, state, 5);
    auto cand = findPrefetchLayer(*net, 7, state);
    ASSERT_TRUE(cand.found());
    EXPECT_TRUE(state.prefetched[std::size_t(net->node(5).xBuffer)]);
    // A second search does not return the same buffer.
    auto again = findPrefetchLayer(*net, 7, state);
    EXPECT_NE(again.layer, 5);
}

TEST(FindPrefetchLayer, WindowStopsAtConvLayer)
{
    auto net = chainNet();
    PrefetchState state(net->numBuffers());
    offloadXOf(*net, state, 0); // only conv1's X offloaded

    // Search from pool1 (4): relu2(3) no, conv2(2) has no offloaded
    // X and is CONV -> window closes without a candidate.
    auto cand = findPrefetchLayer(*net, 4, state);
    EXPECT_FALSE(cand.found());
    // Unbounded search does find conv1.
    auto unbounded = findPrefetchLayer(*net, 4, state, false);
    ASSERT_TRUE(unbounded.found());
    EXPECT_EQ(unbounded.layer, 0);
}

TEST(FindPrefetchLayer, OffloadedConvInWindowIsReturnedNotSkipped)
{
    // Fig. 10 checks offloaded/prefetched *before* the CONV bound, so
    // an offloaded CONV layer terminates the search by being returned.
    auto net = chainNet();
    PrefetchState state(net->numBuffers());
    offloadXOf(*net, state, 2);
    auto cand = findPrefetchLayer(*net, 4, state);
    ASSERT_TRUE(cand.found());
    EXPECT_EQ(cand.layer, 2);
}

TEST(FindPrefetchLayer, NothingOffloadedFindsNothing)
{
    auto net = chainNet();
    PrefetchState state(net->numBuffers());
    for (std::size_t i = 0; i < net->numLayers(); ++i) {
        auto cand = findPrefetchLayer(*net, LayerId(i), state);
        EXPECT_FALSE(cand.found());
    }
}

TEST(FindPrefetchLayer, FirstLayerHasNoPredecessors)
{
    auto net = chainNet();
    PrefetchState state(net->numBuffers());
    offloadXOf(*net, state, 5);
    EXPECT_FALSE(findPrefetchLayer(*net, 0, state).found());
}

TEST(FindPrefetchLayer, SearchStartsBelowCurrentLayer)
{
    // The searching layer's own X is not a candidate (search begins at
    // currLayerId - 1, Fig. 10 line 06).
    auto net = chainNet();
    PrefetchState state(net->numBuffers());
    offloadXOf(*net, state, 5);
    auto cand = findPrefetchLayer(*net, 5, state);
    EXPECT_FALSE(cand.found());
}

TEST(FindPrefetchLayer, GoogLeNetForkJoinReturnsAllLayerBuffers)
{
    auto net = buildGoogLeNet(4);
    PrefetchState state(net->numBuffers());
    // Find a concat layer and offload two of its branch buffers.
    LayerId concat = -1;
    for (LayerId id : net->topoOrder()) {
        if (net->node(id).spec.kind == LayerKind::Concat) {
            concat = id;
            break;
        }
    }
    ASSERT_NE(concat, -1);
    const auto &inputs = net->node(concat).inputs;
    ASSERT_GE(inputs.size(), 2u);
    BufferId b0 = net->node(inputs[0]).yBuffer;
    BufferId b1 = net->node(inputs[1]).yBuffer;
    state.offloaded[std::size_t(b0)] = true;
    state.offloaded[std::size_t(b1)] = true;

    // Search from the layer after the concat.
    LayerId after = net->topoOrder()[std::size_t(
        net->node(concat).topoIndex + 1)];
    auto cand = findPrefetchLayer(*net, after, state, false);
    ASSERT_TRUE(cand.found());
    EXPECT_EQ(cand.layer, concat);
    EXPECT_EQ(cand.buffers.size(), 2u);
}

TEST(FindPrefetchLayer, StateSizeMismatchPanics)
{
    auto net = chainNet();
    PrefetchState bad(3);
    EXPECT_DEATH(findPrefetchLayer(*net, 4, bad), "mismatch");
}
