#include "obs/profiler.hh"

#include <algorithm>
#include <cstdint>

namespace vdnn::obs
{

double
groundTruthReluSparsity(int bufferId, double depthFrac)
{
    depthFrac = std::clamp(depthFrac, 0.0, 1.0);
    // Knuth multiplicative hash -> [0,1) jitter, deterministic per buffer.
    std::uint32_t h = std::uint32_t(bufferId) * 2654435761u;
    double jitter = double(h % 1000u) / 1000.0;
    double s = 0.5 + 0.35 * depthFrac + 0.06 * (jitter - 0.5);
    return std::clamp(s, 0.0, 0.97);
}

} // namespace vdnn::obs
