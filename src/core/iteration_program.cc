#include "core/iteration_program.hh"

#include "common/logging.hh"
#include "core/executor.hh"
#include "core/planner.hh"

#include <algorithm>

namespace vdnn::core
{

const char *
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::BeginIteration:
        return "begin";
      case OpKind::Alloc:
        return "alloc";
      case OpKind::Kernel:
        return "kernel";
      case OpKind::Offload:
        return "offload";
      case OpKind::OnDemandFetch:
        return "fetch";
      case OpKind::Prefetch:
        return "prefetch";
      case OpKind::Sync:
        return "sync";
      case OpKind::Release:
        return "release";
      case OpKind::Barrier:
        return "barrier";
      case OpKind::EndIteration:
        return "end";
    }
    return "?";
}

namespace
{

/** Input buffers of @p id the plan offloads with @p id as last reader. */
std::vector<net::BufferId>
offloadedAt(const net::Network &net, const MemoryPlan &plan,
            net::LayerId id)
{
    std::vector<net::BufferId> out;
    if (plan.staticAllocation)
        return out;
    for (net::LayerId in_id : net.node(id).inputs) {
        net::BufferId b = in_id == net::kInputLayer
                              ? net.inputBuffer()
                              : net.node(in_id).yBuffer;
        if (!plan.offloads(b) || net.buffer(b).lastFwdReader != id)
            continue;
        if (std::find(out.begin(), out.end(), b) == out.end())
            out.push_back(b);
    }
    return out;
}

} // namespace

IterationProgram
IterationProgram::compile(const net::Network &net, const MemoryPlan &plan,
                          const ExecutorConfig &cfg)
{
    VDNN_ASSERT(net.finalized(), "network must be finalized");
    VDNN_ASSERT(plan.buffers.size() == net.numBuffers(),
                "plan does not match the network");

    IterationProgram p;
    auto emit = [&p](OpKind kind, net::LayerId layer, bool backward) {
        p.ops.push_back(IterOp{kind, layer, backward});
    };

    emit(OpKind::BeginIteration, net::kInputLayer, false);

    // Forward phase: allocate, compute, overlap the offload of the
    // layer's retired inputs, join at the boundary, release.
    for (net::LayerId id : net.topoOrder()) {
        emit(OpKind::Alloc, id, false);
        emit(OpKind::Kernel, id, false);
        if (!offloadedAt(net, plan, id).empty())
            emit(OpKind::Offload, id, false);
        emit(OpKind::Sync, id, false);
        emit(OpKind::Release, id, false);
    }

    emit(OpKind::Barrier, net::kInputLayer, true);

    // Backward phase, reverse order: residency + gradients, overlap
    // the Fig. 10 prefetch with the kernels, join, release.
    for (auto it = net.topoOrder().rbegin(); it != net.topoOrder().rend();
         ++it) {
        net::LayerId id = *it;
        const dnn::LayerSpec &spec = net.node(id).spec;
        if (!plan.staticAllocation &&
            (spec.backwardNeedsX() || spec.backwardNeedsY())) {
            emit(OpKind::OnDemandFetch, id, true);
        }
        if (!plan.staticAllocation)
            emit(OpKind::Alloc, id, true);
        if (!plan.staticAllocation && cfg.prefetchEnabled)
            emit(OpKind::Prefetch, id, true);
        emit(OpKind::Kernel, id, true);
        emit(OpKind::Sync, id, true);
        emit(OpKind::Release, id, true);
    }

    emit(OpKind::EndIteration, net::kInputLayer, true);
    return p;
}

std::string
IterationProgram::dump(const net::Network &net) const
{
    std::string out;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const IterOp &op = ops[i];
        std::string where;
        if (op.layer != net::kInputLayer) {
            where = strFormat("%s %s", op.backward ? "bwd" : "fwd",
                              net.node(op.layer).spec.name.c_str());
        }
        out += strFormat("%4zu  %-8s %s\n", i, opKindName(op.kind),
                         where.c_str());
    }
    return out;
}

} // namespace vdnn::core
