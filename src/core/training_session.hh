/**
 * @file
 * Top-level experiment driver: run a network under a memory planner
 * and collect every metric the paper's evaluation reports.
 *
 * A TrainingSession owns one simulated GPU runtime, one vDNN memory
 * manager and one executor; it resolves the plan (running the
 * vDNN_dyn profiling passes when requested), executes the requested
 * number of training iterations, and gathers memory / performance /
 * traffic / power statistics.
 *
 * A Session is also one tenant of the multi-tenant serve layer, and
 * its lifecycle is an explicit state machine the scheduler drives:
 *
 *     Fresh --setup()--> Active --teardown()--> Torn
 *                        |  ^
 *              suspend() |  | resume()
 *                        v  |
 *                      Suspended --evictToHost()--> Evicted
 *                           ^                          |
 *                           +------- resume() ---------+
 *
 *  - suspend() parks the session at the host's current boundary (the
 *    live stepper, if any, stays frozen at its next Sync/Barrier
 *    join); the tenant keeps its device share but receives no more
 *    steps — Suspended(resident).
 *  - evictToHost() releases the tenant's *entire* device share: a
 *    partially executed iteration is cancelled (it re-runs later),
 *    the persistent state is DMAed into pinned host memory, and the
 *    executor is torn down.
 *  - resume() re-activates. From Evicted it first *re-plans* against
 *    a fresh PlannerContext carrying the current free share, rebuilds
 *    the executor (recompiling the IterationProgram) and restores the
 *    persistent state over PCIe — so a resumed tenant may come back
 *    under a smaller (or larger) plan than it left with.
 *  - replan() swaps the plan in place at an iteration boundary
 *    without releasing the device share; only planners advertising
 *    ReplanHint::InPlace support it.
 *  - migrate(target) re-homes an Evicted tenant onto a different
 *    device of the node and resumes it there (the cross-device half
 *    of eviction: vDNN's staged state plus a fresh device-scoped
 *    re-plan make the tenant fully relocatable).
 */

#ifndef VDNN_CORE_TRAINING_SESSION_HH
#define VDNN_CORE_TRAINING_SESSION_HH

#include "core/dynamic_policy.hh"
#include "core/executor.hh"
#include "core/planner.hh"
#include "gpu/gpu_spec.hh"
#include "mem/pinned_host.hh"
#include "net/network.hh"
#include "obs/profiler.hh"
#include "stats/time_weighted.hh"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vdnn::core
{

struct SessionConfig
{
    /**
     * The memory planner driving this session. When null, setup()
     * defaults to DynamicPlanner (vDNN_dyn) with this config's
     * executor knobs.
     */
    std::shared_ptr<Planner> planner;

    gpu::GpuSpec gpu;
    /**
     * Oracular GPU: removes the memory capacity bottleneck (Section
     * V-C) by growing the device pool to hold any allocation. Used to
     * normalize performance when the baseline cannot train at all.
     */
    bool oracle = false;
    int iterations = 2;
    bool contention = true;
    ExecutorConfig exec;
    bool keepTimeline = false;
    bool kernelLog = false;

    SessionConfig();
};

struct SessionResult
{
    std::string network;
    std::string configName;
    bool trainable = false;
    std::string failReason;

    MemoryPlan plan;
    std::vector<TrialRecord> trials; ///< vDNN_dyn profiling history

    // Performance (steady-state, last measured iteration).
    TimeNs iterationTime = 0;
    TimeNs featureExtractionTime = 0;
    TimeNs classifierTime = 0;
    TimeNs transferStallTime = 0;

    // GPU memory (over the whole measured window).
    Bytes maxTotalUsage = 0;
    Bytes avgTotalUsage = 0;
    Bytes maxManagedUsage = 0;
    Bytes avgManagedUsage = 0;
    Bytes persistentBytes = 0;

    // Transfers.
    Bytes offloadedBytesPerIter = 0;
    /** PCIe bytes actually moved (compression applied). */
    Bytes pcieBytesPerIter = 0;
    Bytes hostPeakBytes = 0;
    int offloads = 0;
    int prefetches = 0;
    int onDemandFetches = 0;

    // Power (Section V-D).
    double avgPowerW = 0.0;
    double maxPowerW = 0.0;

    // Per-layer detail (last iteration).
    std::vector<LayerTiming> layerTimings;
    std::vector<gpu::KernelRecord> kernels; ///< when kernelLog set

    // Usage timelines (when keepTimeline set).
    std::vector<stats::TimeWeighted::Sample> totalTimeline;
    std::vector<stats::TimeWeighted::Sample> managedTimeline;
};

/**
 * Handles to a device shared among tenants (multi-tenant serving).
 * All pointers must outlive the Session; allocations are charged to
 * @p clientId in the pool's per-tenant accounting.
 */
struct SharedGpu
{
    gpu::Runtime *runtime = nullptr;
    mem::MemoryPool *pool = nullptr;
    mem::PinnedHostAllocator *host = nullptr;
    int clientId = 0;
};

/** Lifecycle state of a Session (see the file comment's diagram). */
enum class SessionState : std::uint8_t
{
    Fresh,     ///< constructed; setup() has not succeeded yet
    Active,    ///< device-resident and steppable
    Suspended, ///< parked; device share retained, no steps offered
    Evicted,   ///< device share released; state staged in pinned host
    Torn,      ///< teardown() ran (terminal)
};

const char *sessionStateName(SessionState s);

/**
 * An incrementally driven training session.
 *
 * runSession() runs the whole experiment in one call; Session exposes
 * the same lifecycle as separate setup / runIteration / teardown steps
 * so an external scheduler (src/serve/) can interleave iterations of
 * many jobs on one shared device, and the suspend / evict / resume /
 * replan transitions documented above. Two construction modes:
 *
 *  - exclusive: the session owns a private runtime and device pool
 *    sized by config.gpu (this is what runSession() uses);
 *  - shared: the session is one tenant of a SharedGpu — its persistent
 *    and transient allocations come from the communal pool and its
 *    kernels/DMAs arbitrate the shared compute and copy engines.
 */
class Session
{
  public:
    Session(const net::Network &net, SessionConfig config);
    Session(const net::Network &net, SessionConfig config,
            SharedGpu shared);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Resolve the plan (running vDNN_dyn profiling passes when the
     * policy is Dynamic) and allocate the persistent state.
     * @return false when untrainable / the pool cannot hold it.
     */
    bool setup();

    /** Run one training iteration. Requires a successful setup(). */
    IterationResult runIteration();

    /**
     * Start an iteration to be driven one op at a time by an external
     * scheduler (serve-layer packed overlap). The previous iteration
     * must have been collected with completeIteration().
     */
    IterationStepper &beginIteration();

    /** The live stepper, or nullptr between iterations. */
    IterationStepper *activeStepper();

    /**
     * Fold a finished stepper's result into the session state
     * (iteration count / failure) and retire the stepper.
     */
    IterationResult completeIteration();

    /** The compiled op stream (after a successful setup()). */
    const IterationProgram &program() const;

    // --- lifecycle transitions (the serve layer's state machine) ---------

    /**
     * Park the session: Active -> Suspended. Legal at any point the
     * host holds control — in particular at every Sync/Barrier
     * boundary of a live stepper, which stays frozen exactly where it
     * is (suspending and resuming without evicting perturbs nothing;
     * the device timeline is byte-identical to an uninterrupted run).
     * The tenant keeps its device share.
     */
    void suspend();

    /**
     * Release the tenant's entire device share: Suspended -> Evicted.
     * A partially executed iteration is cancelled (unwound without
     * being counted; it re-runs after resume), the persistent state —
     * weights, shared dW, the classifier block, and for
     * static-allocation plans the whole network — is DMAed into a
     * pinned host staging buffer, and the executor is torn down.
     * @return false (still Suspended) when pinned host memory cannot
     *         hold the staged state.
     */
    bool evictToHost();

    /**
     * Reactivate the session. From Suspended this just unparks
     * (Suspended -> Active). From Evicted it re-plans first: the
     * planner runs against a fresh PlannerContext carrying the
     * *current* free share, the executor is rebuilt around the new
     * plan (recompiling the IterationProgram at the iteration
     * boundary), the persistent state is restored over PCIe and the
     * staging buffer is released. @return false (still Evicted) when
     * the new plan is infeasible or the pool cannot hold the rebuilt
     * persistent state; the caller may retry once capacity frees up.
     */
    bool resume();

    /**
     * Mid-run re-plan in place: with no iteration in flight, run the
     * planner against the current free share and swap the compiled
     * program without releasing the device share. Only planners
     * advertising ReplanHint::InPlace participate. @return true when
     * a (possibly identical) fresh plan was adopted.
     */
    bool replan();

    /**
     * Cross-device migration: re-home an Evicted shared-mode tenant
     * onto a different device of the same node and resume it there.
     * The staged persistent state moves to the target device's
     * pinned-host share (node DRAM is one physical resource, so the
     * hand-off between shares costs no DMA), the session re-binds its
     * runtime handles to the target (fresh CudnnSim for the target's
     * perf model, fresh MemoryManager over its pool), and resume()
     * re-plans against the *target's* free share — eviction plus
     * cross-device resume is exactly Gandiva-style migration.
     *
     * @return true when the tenant is Active on the target. On false
     * the session is still Evicted; deviceId() says where it is
     * homed — still the source when the target's pinned host could
     * not take the staged state, the target when the re-plan or the
     * persistent-state rebuild failed there (a later resume() retries
     * on the target).
     */
    bool migrate(SharedGpu target);

    /**
     * Buffer-granularity paging (Salus-style "evict buffers before
     * tenants"): release up to @p need bytes of cold, host-backed
     * device copies via Executor::pageOutCold. Legal only while
     * Active; a parked (Blocked) stepper is fine — the candidate set
     * excludes every buffer the current or an already-running layer
     * touches, and the pages come back through the on-demand fetch
     * path. @return bytes freed (0 at an iteration boundary).
     */
    Bytes pageOut(Bytes need);

    SessionState state() const { return lifecycle; }

    /** Bytes staged in pinned host memory while Evicted (else 0). */
    Bytes evictedBytes() const { return evictStage.size; }

    /** Lifetime counts of lifecycle transitions (reporting). */
    int suspendCount() const { return suspends; }
    int evictCount() const { return evicts; }
    int replanCount() const { return replans; }
    int migrationCount() const { return migrations; }

    /** Device this session is homed on (0 on a single-GPU node). */
    int deviceId() const { return rt->deviceId(); }

    /** Release all device state. Idempotent after setup(). */
    void teardown();

    /** The session is Active (steppable). */
    bool active() const { return lifecycle == SessionState::Active; }

    /** Number of completed (successful) iterations so far. */
    int iterationsDone() const { return itersDone; }

    Bytes persistentBytes() const;
    const MemoryPlan &plan() const { return execPlan; }
    const std::string &failReason() const { return failure; }

    /**
     * The measured first-iteration profile: footprint, timings, PCIe
     * traffic and per-buffer activation sparsity. valid after the
     * first completed iteration; later re-plans (and, via the serve
     * layer, admission reservations) consume it through
     * PlannerContext::profile.
     */
    const obs::ProfiledFootprint &profiledFootprint() const
    {
        return profiledFp;
    }

    gpu::Runtime &runtime() { return *rt; }
    MemoryManager &memory() { return *mm; }

    /** Assemble the experiment report from the state gathered so far. */
    SessionResult result() const;

  private:
    bool resolvePlan();
    PlannerContext plannerContext() const;
    void collectProfile(const IterationResult &r);
    void traceLifecycle(const char *what);

    const net::Network &net;
    SessionConfig config;
    gpu::GpuSpec spec; ///< effective device spec (oracle applied)
    std::unique_ptr<dnn::CudnnSim> cudnn;

    std::unique_ptr<gpu::Runtime> ownedRt;
    std::unique_ptr<MemoryManager> mm;
    gpu::Runtime *rt = nullptr;
    bool sharedMode = false;

    MemoryPlan execPlan;
    std::vector<TrialRecord> trials;
    std::string plannerLabel;
    std::unique_ptr<Executor> ex;

    bool planResolved = false;
    SessionState lifecycle = SessionState::Fresh;
    bool failed = false;
    std::string failure;
    int itersDone = 0;
    IterationResult lastIter;

    /** Measured first-iteration profile (valid after iteration 1). */
    obs::ProfiledFootprint profiledFp;

    /** Pinned host staging of the persistent state while Evicted. */
    mem::HostAllocation evictStage;
    int suspends = 0;
    int evicts = 0;
    int replans = 0;
    int migrations = 0;
};

/** Run one complete experiment. */
SessionResult runSession(const net::Network &net, SessionConfig config);

/**
 * Short label like "vDNN_all (m)" or "base (p) [oracle]". Uses the
 * planner's name; a null planner reads "vDNN_dyn" (the default
 * setup() falls back to).
 */
std::string sessionConfigName(const SessionConfig &config);

} // namespace vdnn::core

#endif // VDNN_CORE_TRAINING_SESSION_HH
