#include "gpu/gpu_spec.hh"

#include "common/units.hh"

namespace vdnn::gpu
{

GpuSpec
titanXMaxwell()
{
    GpuSpec s;
    s.name = "Titan X (Maxwell)";
    return s;
}

GpuSpec
titanXPascal()
{
    GpuSpec s;
    s.name = "Titan X (Pascal)";
    s.peakFlops = 11.0e12;
    s.dramBandwidth = 480.0e9;
    s.dramCapacity = 12 * kGiB;
    s.idlePowerW = 65.0;
    s.computePowerW = 150.0;
    s.dramPowerW = 45.0;
    return s;
}

GpuSpec
teslaK40()
{
    GpuSpec s;
    s.name = "Tesla K40";
    s.peakFlops = 4.3e12;
    s.dramBandwidth = 288.0e9;
    s.dramCapacity = 12 * kGiB;
    s.idlePowerW = 60.0;
    s.computePowerW = 130.0;
    s.dramPowerW = 45.0;
    return s;
}

GpuSpec
smallGpu4GiB()
{
    GpuSpec s;
    s.name = "Small 4 GiB GPU";
    s.peakFlops = 3.0e12;
    s.dramBandwidth = 200.0e9;
    s.dramCapacity = 4 * kGiB;
    return s;
}

} // namespace vdnn::gpu
