#include "common/random.hh"

#include "common/logging.hh"

namespace vdnn
{

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double
SplitMix64::nextDouble()
{
    // 53 top bits -> [0,1) with full double precision.
    return double(next() >> 11) * (1.0 / 9007199254740992.0);
}

std::int64_t
SplitMix64::nextRange(std::int64_t lo, std::int64_t hi)
{
    VDNN_ASSERT(lo <= hi, "invalid range [%lld, %lld]",
                (long long)lo, (long long)hi);
    std::uint64_t span = std::uint64_t(hi - lo) + 1;
    if (span == 0)
        return std::int64_t(next()); // full 64-bit range requested
    return lo + std::int64_t(next() % span);
}

} // namespace vdnn
