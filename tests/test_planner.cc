/**
 * @file
 * Tests for the Planner API and the MemoryPlan IR: structural golden
 * plans (offload sets and algorithm assignments), the shared-pool
 * PlannerContext, compressed-offload directives, prefetch-priority
 * hints, replan hints, and plan provenance.
 */

#include "core/dynamic_policy.hh"
#include "core/planner.hh"
#include "core/prefetch.hh"
#include "core/training_session.hh"
#include "serve/admission.hh"

#include "common/units.hh"
#include "net/builders.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

using namespace vdnn;
using namespace vdnn::core;
using namespace vdnn::literals;

namespace
{

PlannerContext
titanCtx()
{
    return PlannerContext::exclusive(gpu::titanXMaxwell());
}

/** Offload set of a plan as a bool vector. */
std::vector<bool>
offloadSet(const net::Network &net, const MemoryPlan &plan)
{
    std::vector<bool> set(net.numBuffers(), false);
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b)
        set[std::size_t(b)] = plan.offloads(b);
    return set;
}

} // namespace

// --- structural golden plans -------------------------------------------------

class GoldenPlanTest
    : public ::testing::TestWithParam<std::shared_ptr<const net::Network>>
{};

TEST_P(GoldenPlanTest, OffloadAllCoversExactlyTheEligibleSet)
{
    const net::Network &net = *GetParam();
    MemoryPlan plan =
        OffloadAllPlanner(AlgoPreference::MemoryOptimal)
            .plan(net, titanCtx());
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b)
        EXPECT_EQ(plan.offloads(b), offloadEligible(net, b)) << b;
    EXPECT_EQ(plan.algos, net::memoryOptimalAlgos(net));
    EXPECT_GT(plan.offloadCount(), 0);
}

TEST_P(GoldenPlanTest, OffloadConvPicksConvReadSubset)
{
    const net::Network &net = *GetParam();
    dnn::CudnnSim cudnn(gpu::titanXMaxwell());
    MemoryPlan plan =
        OffloadConvPlanner(AlgoPreference::PerformanceOptimal)
            .plan(net, titanCtx());
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers());
         ++b) {
        bool conv_read =
            offloadEligible(net, b) &&
            net.node(net.buffer(b).lastFwdReader).spec.kind ==
                dnn::LayerKind::Conv;
        EXPECT_EQ(plan.offloads(b), conv_read) << b;
    }
    EXPECT_EQ(plan.algos, net::performanceOptimalAlgos(net, cudnn));
}

INSTANTIATE_TEST_SUITE_P(
    Networks, GoldenPlanTest,
    ::testing::Values(
        std::shared_ptr<const net::Network>(net::buildVgg16(64)),
        std::shared_ptr<const net::Network>(net::buildAlexNet(128))));

TEST(PlannerNames, EveryShippedPlannerHasAPaperStyleLabel)
{
    EXPECT_EQ(BaselinePlanner(AlgoPreference::PerformanceOptimal)
                  .name(),
              "base (p)");
    EXPECT_EQ(OffloadAllPlanner(AlgoPreference::MemoryOptimal).name(),
              "vDNN_all (m)");
    EXPECT_EQ(OffloadConvPlanner(AlgoPreference::MemoryOptimal).name(),
              "vDNN_conv (m)");
    EXPECT_EQ(DynamicPlanner().name(), "vDNN_dyn");
    EXPECT_EQ(CompressedOffloadPlanner().name(), "vDNN_all+cDMA (m)");
}

TEST(ReplanHints, NamesAndDefaults)
{
    EXPECT_STREQ(replanHintName(ReplanHint::Evict), "evict");
    EXPECT_STREQ(replanHintName(ReplanHint::InPlace), "in-place");
    // The base-class default is the conservative choice.
    class Custom : public Planner
    {
      public:
        std::string name() const override { return "custom"; }
        MemoryPlan plan(const net::Network &net,
                        const PlannerContext &ctx) override
        {
            return BaselinePlanner().plan(net, ctx);
        }
    };
    EXPECT_EQ(Custom().replanHint(), ReplanHint::Evict);
}

// --- provenance --------------------------------------------------------------

TEST(Provenance, EveryStaticPlannerFillsItIn)
{
    auto network = net::buildAlexNet(32);
    for (const std::shared_ptr<Planner> &planner :
         {std::shared_ptr<Planner>(std::make_shared<BaselinePlanner>()),
          std::shared_ptr<Planner>(std::make_shared<OffloadAllPlanner>()),
          std::shared_ptr<Planner>(
              std::make_shared<OffloadConvPlanner>()),
          std::shared_ptr<Planner>(
              std::make_shared<CompressedOffloadPlanner>())}) {
        MemoryPlan plan = planner->plan(*network, titanCtx());
        EXPECT_FALSE(plan.provenance.empty()) << planner->name();
        EXPECT_NE(plan.provenance.find("static"), std::string::npos)
            << planner->name();
    }
}

// --- shared-pool context -----------------------------------------------------

TEST(SharedContext, DynamicPlanShrinksWithTheFreeShare)
{
    // The same VGG-16 tenant planned against the whole 12 GB device
    // picks the no-offload performance ideal; planned against a small
    // free share of a crowded pool, it must fall back to offloading.
    auto network = net::buildVgg16(64);
    gpu::GpuSpec spec = gpu::titanXMaxwell();
    DynamicPlanner dyn;

    MemoryPlan whole =
        dyn.plan(*network, PlannerContext::exclusive(spec));
    ASSERT_TRUE(whole.feasible);
    EXPECT_EQ(whole.offloadCount(), 0);

    MemoryPlan squeezed =
        dyn.plan(*network, PlannerContext::shared(spec, 4_GiB));
    ASSERT_TRUE(squeezed.feasible);
    EXPECT_GT(squeezed.offloadCount(), 0);

    // The derived footprint shrinks alongside the share.
    dnn::CudnnSim cudnn(spec);
    serve::FootprintEstimate whole_est =
        serve::estimateFootprint(*network, cudnn, whole);
    serve::FootprintEstimate squeezed_est =
        serve::estimateFootprint(*network, cudnn, squeezed);
    EXPECT_LT(squeezed_est.total(), whole_est.total());
}

TEST(SharedContext, TinyShareIsInfeasible)
{
    auto network = net::buildVgg16(64);
    DynamicPlanner dyn;
    MemoryPlan plan = dyn.plan(
        *network,
        PlannerContext::shared(gpu::titanXMaxwell(), 64_MiB));
    EXPECT_FALSE(plan.feasible);
    EXPECT_FALSE(plan.failReason.empty());
}

TEST(SharedContext, CapacityDefaultsToTheWholeDevice)
{
    PlannerContext ctx = PlannerContext::exclusive(gpu::titanXMaxwell());
    EXPECT_EQ(ctx.capacity(), gpu::titanXMaxwell().dramCapacity);
    PlannerContext shared =
        PlannerContext::shared(gpu::titanXMaxwell(), 1_GiB);
    EXPECT_EQ(shared.capacity(), 1_GiB);
    // An exhausted pool (zero free share) must NOT degenerate to the
    // whole-device sentinel: the tenant plans against ~nothing.
    PlannerContext empty =
        PlannerContext::shared(gpu::titanXMaxwell(), 0);
    EXPECT_LT(empty.capacity(), 1_MiB);
}

TEST(SharedContext, AdmissionPlanIsTheMemoryFloor)
{
    // DynamicPlanner's admission plan must equal the vDNN_all (m)
    // floor — and be produced without running any trials.
    auto network = net::buildVgg16(64);
    DynamicPlanner dyn;
    MemoryPlan floor = dyn.admissionPlan(*network, titanCtx());
    MemoryPlan all_m = OffloadAllPlanner(AlgoPreference::MemoryOptimal)
                           .plan(*network, titanCtx());
    EXPECT_EQ(offloadSet(*network, floor), offloadSet(*network, all_m));
    EXPECT_EQ(floor.algos, all_m.algos);
    EXPECT_TRUE(floor.trials.empty());
}

// --- compressed offload ------------------------------------------------------

TEST(CompressedOffload, SameOffloadSetFewerPcieBytes)
{
    auto network = net::buildVgg16(64);
    MemoryPlan raw = OffloadAllPlanner(AlgoPreference::MemoryOptimal)
                         .plan(*network, titanCtx());
    MemoryPlan cdma =
        CompressedOffloadPlanner(AlgoPreference::MemoryOptimal)
            .plan(*network, titanCtx());
    EXPECT_EQ(offloadSet(*network, cdma), offloadSet(*network, raw));
    EXPECT_EQ(cdma.offloadedBytes(*network),
              raw.offloadedBytes(*network));
    EXPECT_LT(cdma.offloadedDmaBytes(*network),
              raw.offloadedDmaBytes(*network));
    // VGG-16 is ReLU-heavy: the engine should at least halve traffic.
    EXPECT_LT(2 * cdma.offloadedDmaBytes(*network),
              3 * raw.offloadedDmaBytes(*network));
}

TEST(CompressedOffload, SparsityGrowsWithDepth)
{
    CompressedOffloadPlanner planner;
    EXPECT_GT(planner.dmaScaleAtDepth(0.0),
              planner.dmaScaleAtDepth(1.0));
    EXPECT_LE(planner.dmaScaleAtDepth(0.0), 1.0);
    EXPECT_GT(planner.dmaScaleAtDepth(1.0), 0.0);
}

TEST(CompressedOffload, SessionMovesFewerPcieBytes)
{
    auto network = net::buildTinyCnn(32);
    auto run = [&](std::shared_ptr<Planner> planner) {
        SessionConfig cfg;
        cfg.planner = std::move(planner);
        return runSession(*network, cfg);
    };
    auto raw = run(std::make_shared<OffloadAllPlanner>());
    auto cdma = run(std::make_shared<CompressedOffloadPlanner>());
    ASSERT_TRUE(raw.trainable);
    ASSERT_TRUE(cdma.trainable);
    // Same logical bytes leave the device; fewer bytes cross PCIe.
    EXPECT_EQ(cdma.offloadedBytesPerIter, raw.offloadedBytesPerIter);
    EXPECT_LT(cdma.pcieBytesPerIter, raw.pcieBytesPerIter);
    EXPECT_LE(cdma.transferStallTime, raw.transferStallTime);
}

// --- prefetch-priority hints -------------------------------------------------

TEST(PrefetchHints, NegativePriorityDisablesPrefetch)
{
    auto network = net::buildTinyCnn(16);
    MemoryPlan plan = OffloadAllPlanner(AlgoPreference::MemoryOptimal)
                          .plan(*network, titanCtx());
    // Hint every buffer out of overlapped prefetching: the executor
    // must fall back to serialized on-demand fetches.
    for (BufferDirective &d : plan.buffers)
        d.prefetchPriority = -1;

    dnn::CudnnSim cudnn(gpu::titanXMaxwell());
    gpu::Runtime rt(gpu::titanXMaxwell());
    MemoryManager mm(rt);
    Executor ex(*network, cudnn, rt, mm, plan);
    ASSERT_TRUE(ex.setup());
    IterationResult r = ex.runIteration();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.prefetches, 0);
    EXPECT_EQ(r.onDemandFetches, r.offloads);
    ex.teardown();
}

TEST(PrefetchHints, HigherPriorityIssuesFirst)
{
    // Two offloaded buffers read by the same CONCAT-style join would
    // normally be issued in input order; the priority hint reorders.
    auto network = net::buildGoogLeNet(16);
    MemoryPlan plan = OffloadAllPlanner(AlgoPreference::MemoryOptimal)
                          .plan(*network, titanCtx());

    // Find a layer with two offloaded input buffers.
    net::LayerId join = net::kInputLayer;
    std::vector<net::BufferId> ins;
    for (net::LayerId id : network->topoOrder()) {
        ins.clear();
        for (net::LayerId in_id : network->node(id).inputs) {
            net::BufferId b = in_id == net::kInputLayer
                                  ? network->inputBuffer()
                                  : network->node(in_id).yBuffer;
            if (plan.offloads(b) &&
                std::find(ins.begin(), ins.end(), b) == ins.end()) {
                ins.push_back(b);
            }
        }
        if (ins.size() >= 2) {
            join = id;
            break;
        }
    }
    ASSERT_NE(join, net::kInputLayer) << "no multi-input join found";

    // Prioritize the *last* input buffer above the others.
    plan.directive(ins.back()).prefetchPriority = 10;

    PrefetchState state(network->numBuffers());
    for (net::BufferId b : ins)
        state.offloaded[std::size_t(b)] = true;
    // Search from the layer right after the join: the backward-order
    // scan examines the join's inputs first.
    const auto &topo = network->topoOrder();
    int join_idx = network->node(join).topoIndex;
    ASSERT_LT(std::size_t(join_idx + 1), topo.size());
    net::LayerId after = topo[std::size_t(join_idx + 1)];
    PrefetchCandidate cand = findPrefetchLayer(
        *network, after, state, /*bounded=*/false, &plan);
    ASSERT_TRUE(cand.found());
    EXPECT_EQ(cand.layer, join);
    ASSERT_GE(cand.buffers.size(), 2u);
    EXPECT_EQ(cand.buffers.front(), ins.back());
}

// --- session-level validation ------------------------------------------------

TEST(SessionValidation, CustomPlannerDrivesTheSession)
{
    // A user-written planner: keep everything resident (layer-wise
    // allocation, no offload) with memory-optimal algorithms.
    class ResidentPlanner : public Planner
    {
      public:
        std::string name() const override { return "resident"; }
        MemoryPlan plan(const net::Network &net,
                        const PlannerContext &ctx) override
        {
            MemoryPlan p =
                OffloadAllPlanner(AlgoPreference::MemoryOptimal)
                    .plan(net, ctx);
            p.clearOffloads();
            p.provenance = "custom: keep everything resident";
            return p;
        }
    };

    auto network = net::buildTinyCnn(8);
    SessionConfig cfg;
    cfg.planner = std::make_shared<ResidentPlanner>();
    auto r = runSession(*network, cfg);
    ASSERT_TRUE(r.trainable);
    EXPECT_EQ(r.configName, "resident");
    EXPECT_EQ(r.offloadedBytesPerIter, 0);
    EXPECT_EQ(r.plan.provenance, "custom: keep everything resident");
}

TEST(SessionValidation, InfeasiblePlanFailsSetupWithReason)
{
    class NeverPlanner : public Planner
    {
      public:
        std::string name() const override { return "never"; }
        MemoryPlan plan(const net::Network &net,
                        const PlannerContext &ctx) override
        {
            MemoryPlan p = BaselinePlanner().plan(net, ctx);
            p.feasible = false;
            p.failReason = "synthetic refusal";
            return p;
        }
    };

    auto network = net::buildTinyCnn(8);
    SessionConfig cfg;
    cfg.planner = std::make_shared<NeverPlanner>();
    auto r = runSession(*network, cfg);
    EXPECT_FALSE(r.trainable);
    EXPECT_EQ(r.failReason, "synthetic refusal");
}
