/**
 * @file
 * Scalar statistics accumulator (count / min / max / mean / stddev).
 */

#ifndef VDNN_STATS_ACCUMULATOR_HH
#define VDNN_STATS_ACCUMULATOR_HH

#include <cstdint>

namespace vdnn::stats
{

/**
 * Streaming accumulator using Welford's algorithm, so the variance is
 * numerically stable even for long runs of similar values.
 */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double v);

    /** Merge another accumulator's samples into this one. */
    void merge(const Accumulator &other);

    /** Drop all samples. */
    void reset();

    std::uint64_t count() const { return n; }
    double min() const;
    double max() const;
    double mean() const;
    double sum() const { return total; }
    /** Population variance; 0 with fewer than 2 samples. */
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t n = 0;
    double total = 0.0;
    double meanVal = 0.0;
    double m2 = 0.0;
    double minVal = 0.0;
    double maxVal = 0.0;
};

} // namespace vdnn::stats

#endif // VDNN_STATS_ACCUMULATOR_HH
