#include "stats/time_weighted.hh"

#include "common/logging.hh"

#include <algorithm>

namespace vdnn::stats
{

void
TimeWeighted::record(TimeNs when, double value)
{
    VDNN_ASSERT(!done, "record() after finish()");
    if (!started) {
        started = true;
        firstTime = lastTime = when;
        curVal = value;
        peakVal = value;
        if (keepTimeline)
            samples.push_back({when, value});
        return;
    }
    VDNN_ASSERT(when >= lastTime, "time went backwards: %lld < %lld",
                (long long)when, (long long)lastTime);
    integral += curVal * double(when - lastTime);
    lastTime = when;
    curVal = value;
    peakVal = std::max(peakVal, value);
    if (keepTimeline)
        samples.push_back({when, value});
}

void
TimeWeighted::finish(TimeNs when)
{
    VDNN_ASSERT(!done, "finish() called twice");
    if (started) {
        VDNN_ASSERT(when >= lastTime, "finish() in the past");
        integral += curVal * double(when - lastTime);
        lastTime = when;
    } else {
        firstTime = lastTime = when;
    }
    done = true;
}

double
TimeWeighted::average() const
{
    TimeNs span = lastTime - firstTime;
    if (span <= 0) {
        // Degenerate window: fall back to the last value seen.
        return started ? curVal : 0.0;
    }
    return integral / double(span);
}

} // namespace vdnn::stats
