#include "check/check.hh"

#include "common/logging.hh"

namespace vdnn::check
{

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Info:
        return "info";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "?";
}

const char *
diagCodeName(DiagCode c)
{
    switch (c) {
      case DiagCode::BadStructure:
        return "BadStructure";
      case DiagCode::SyncOrder:
        return "SyncOrder";
      case DiagCode::UseUnallocated:
        return "UseUnallocated";
      case DiagCode::ReadOffloaded:
        return "ReadOffloaded";
      case DiagCode::DoubleOffload:
        return "DoubleOffload";
      case DiagCode::DoubleRelease:
        return "DoubleRelease";
      case DiagCode::MissingGradient:
        return "MissingGradient";
      case DiagCode::MissingWorkspace:
        return "MissingWorkspace";
      case DiagCode::UnjoinedDma:
        return "UnjoinedDma";
      case DiagCode::LeakedAlloc:
        return "LeakedAlloc";
      case DiagCode::HostLeak:
        return "HostLeak";
      case DiagCode::PlanShape:
        return "PlanShape";
      case DiagCode::Infeasible:
        return "Infeasible";
      case DiagCode::IneligibleOffload:
        return "IneligibleOffload";
      case DiagCode::CompressedDense:
        return "CompressedDense";
      case DiagCode::BadDmaScale:
        return "BadDmaScale";
      case DiagCode::StaticPlanTraffic:
        return "StaticPlanTraffic";
      case DiagCode::PriorityConflict:
        return "PriorityConflict";
      case DiagCode::ShareExceeded:
        return "ShareExceeded";
      case DiagCode::LedgerChain:
        return "LedgerChain";
      case DiagCode::LedgerNonZero:
        return "LedgerNonZero";
      case DiagCode::BadTransition:
        return "BadTransition";
      case DiagCode::DoubleResidency:
        return "DoubleResidency";
      case DiagCode::LostJob:
        return "LostJob";
      case DiagCode::DeltaSign:
        return "DeltaSign";
      case DiagCode::OutcomeMismatch:
        return "OutcomeMismatch";
    }
    return "?";
}

std::string
Diagnostic::str() const
{
    std::string where;
    if (op >= 0)
        where += strFormat(" op %d", op);
    if (layer >= 0)
        where += strFormat(" layer %d", layer);
    if (buffer >= 0)
        where += strFormat(" buffer %d", buffer);
    return strFormat("%s[%s]%s: %s", severityName(severity),
                     diagCodeName(code), where.c_str(), message.c_str());
}

int
CheckResult::errorCount() const
{
    int n = 0;
    for (const Diagnostic &d : diags)
        n += d.severity == Severity::Error;
    return n;
}

int
CheckResult::warningCount() const
{
    int n = 0;
    for (const Diagnostic &d : diags)
        n += d.severity == Severity::Warning;
    return n;
}

std::string
CheckResult::report() const
{
    std::string out;
    for (const Diagnostic &d : diags) {
        out += d.str();
        out += '\n';
    }
    return out;
}

Diagnostic &
CheckResult::add(DiagCode code, Severity sev, std::string message,
                 int op, int layer, int buffer)
{
    Diagnostic d;
    d.code = code;
    d.severity = sev;
    d.message = std::move(message);
    d.op = op;
    d.layer = layer;
    d.buffer = buffer;
    diags.push_back(std::move(d));
    return diags.back();
}

void
CheckResult::merge(const CheckResult &other)
{
    diags.insert(diags.end(), other.diags.begin(), other.diags.end());
    peakTransientBytes =
        std::max(peakTransientBytes, other.peakTransientBytes);
    persistentBytes = std::max(persistentBytes, other.persistentBytes);
    provablePeakBytes =
        std::max(provablePeakBytes, other.provablePeakBytes);
    dmasIssued += other.dmasIssued;
    dmasJoined += other.dmasJoined;
}

bool
CheckConfig::defaultEnabled()
{
#ifdef VDNN_CHECK_OFF_BY_DEFAULT
    return false;
#else
    return true;
#endif
}

} // namespace vdnn::check
