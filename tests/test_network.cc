/**
 * @file
 * Unit tests for the network graph: topology, buffer derivation,
 * reference counts (Fig. 3), backward-use analysis and the classifier
 * boundary.
 */

#include "net/network.hh"

#include "common/logging.hh"
#include "dnn/layer.hh"

#include <gtest/gtest.h>

using namespace vdnn;
using namespace vdnn::dnn;
using namespace vdnn::net;

namespace
{

/** conv -> relu -> pool -> fc -> loss on a small input. */
std::unique_ptr<Network>
linearNet()
{
    TensorShape in{4, 3, 32, 32};
    auto net = std::make_unique<Network>("linear", in);
    ConvParams cp;
    cp.outChannels = 8;
    cp.padH = cp.padW = 1;
    net->append(makeConv("conv1", in, cp));
    net->append(makeActivation("relu1", net->node(0).spec.out));
    net->append(makePool("pool1", net->node(1).spec.out, PoolParams{}));
    net->append(makeFc("fc1", net->node(2).spec.out, FcParams{10}));
    net->append(makeSoftmaxLoss("loss", net->node(3).spec.out));
    net->finalize();
    return net;
}

/**
 * The Figure 3 fork/join graph: layer1 forks into layer2 and layer3
 * (both read its output), whose outputs join at layer5 (concat);
 * layer4 sits between layer3 and the join.
 */
std::unique_ptr<Network>
forkJoinNet()
{
    TensorShape in{2, 8, 16, 16};
    auto net = std::make_unique<Network>("forkjoin", in);
    ConvParams cp;
    cp.outChannels = 8;
    cp.kernelH = cp.kernelW = 1;
    LayerId l1 = net->addLayer(makeConv("layer1", in, cp),
                               {kInputLayer});
    TensorShape mid = net->node(l1).spec.out;
    LayerId l2 = net->addLayer(makeConv("layer2", mid, cp), {l1});
    LayerId l3 = net->addLayer(makeConv("layer3", mid, cp), {l1});
    LayerId l4 = net->addLayer(makeConv("layer4", mid, cp), {l3});
    std::vector<TensorShape> shapes = {net->node(l2).spec.out,
                                       net->node(l4).spec.out};
    net->addLayer(makeConcat("layer5", shapes), {l2, l4});
    net->finalize();
    return net;
}

} // namespace

TEST(Network, LinearTopologyOrder)
{
    auto net = linearNet();
    ASSERT_EQ(net->numLayers(), 5u);
    const auto &topo = net->topoOrder();
    for (std::size_t i = 0; i < topo.size(); ++i)
        EXPECT_EQ(net->node(topo[i]).topoIndex, int(i));
    // A linear chain's topo order is the insertion order.
    for (std::size_t i = 0; i < topo.size(); ++i)
        EXPECT_EQ(topo[i], LayerId(i));
}

TEST(Network, ConsumersDerivedFromInputs)
{
    auto net = linearNet();
    EXPECT_EQ(net->node(0).consumers, (std::vector<LayerId>{1}));
    EXPECT_EQ(net->node(3).consumers, (std::vector<LayerId>{4}));
    EXPECT_TRUE(net->node(4).consumers.empty());
}

TEST(Network, InPlaceLayersShareBuffers)
{
    auto net = linearNet();
    // relu1 is in-place: its X and Y buffers are conv1's output buffer.
    const LayerNode &conv1 = net->node(0);
    const LayerNode &relu1 = net->node(1);
    EXPECT_EQ(relu1.xBuffer, conv1.yBuffer);
    EXPECT_EQ(relu1.yBuffer, conv1.yBuffer);
    // pool1 reads the same buffer but writes a fresh one.
    const LayerNode &pool1 = net->node(2);
    EXPECT_EQ(pool1.xBuffer, conv1.yBuffer);
    EXPECT_NE(pool1.yBuffer, conv1.yBuffer);
}

TEST(Network, BufferCountExcludesInPlaceLayers)
{
    auto net = linearNet();
    // input + conv1.Y + pool1.Y + fc1.Y + loss.Y (relu is in-place).
    EXPECT_EQ(net->numBuffers(), 5u);
}

TEST(Network, InputBufferPropertiesAndReaders)
{
    auto net = linearNet();
    const Buffer &in = net->buffer(net->inputBuffer());
    EXPECT_EQ(in.producer, kInputLayer);
    ASSERT_EQ(in.readers.size(), 1u);
    EXPECT_EQ(in.readers[0], 0); // conv1
    EXPECT_EQ(in.refCount, 1);
}

TEST(Network, RefcountMatchesFigure3)
{
    auto net = forkJoinNet();
    // layer1's output is consumed by layer2 and layer3: Refcnt = 2.
    const Buffer &b = net->buffer(net->node(0).yBuffer);
    EXPECT_EQ(b.refCount, 2);
    EXPECT_EQ(b.readers.size(), 2u);
    // The branch outputs have Refcnt = 1 (the concat).
    EXPECT_EQ(net->buffer(net->node(1).yBuffer).refCount, 1);
    EXPECT_EQ(net->buffer(net->node(3).yBuffer).refCount, 1);
}

TEST(Network, LastFwdReaderIsTopoLast)
{
    auto net = forkJoinNet();
    const Buffer &b = net->buffer(net->node(0).yBuffer);
    // layer3 is added after layer2, so it reads layer1's output last.
    EXPECT_EQ(b.lastFwdReader, 2);
}

TEST(Network, BwdUsersFollowLayerKinds)
{
    auto net = linearNet();
    // conv1's Y buffer: needed by relu1 (Y, in-place) and pool1 (X).
    const Buffer &conv_out = net->buffer(net->node(0).yBuffer);
    EXPECT_EQ(conv_out.bwdUsers, (std::vector<LayerId>{1, 2}));
    // Backward runs in reverse order, so the *lowest*-topo user is the
    // release point.
    EXPECT_EQ(net->lastBwdUser(net->node(0).yBuffer), 1);
    // The input buffer is needed by conv1's weight-gradient pass.
    EXPECT_EQ(net->lastBwdUser(net->inputBuffer()), 0);
}

TEST(Network, ClassifierBoundaryAtFirstFc)
{
    auto net = linearNet();
    EXPECT_FALSE(net->node(0).classifier);
    EXPECT_FALSE(net->node(2).classifier);
    EXPECT_TRUE(net->node(3).classifier); // fc1
    EXPECT_TRUE(net->node(4).classifier); // loss
    EXPECT_FALSE(net->buffer(net->node(2).yBuffer).classifier);
    EXPECT_TRUE(net->buffer(net->node(3).yBuffer).classifier);
}

TEST(Network, TotalWeightBytes)
{
    auto net = linearNet();
    Bytes expected = 0;
    for (std::size_t i = 0; i < net->numLayers(); ++i)
        expected += net->node(LayerId(i)).spec.weightBytes();
    EXPECT_EQ(net->totalWeightBytes(), expected);
    EXPECT_GT(expected, 0);
}

TEST(Network, CountKind)
{
    auto net = linearNet();
    EXPECT_EQ(net->countKind(LayerKind::Conv), 1);
    EXPECT_EQ(net->countKind(LayerKind::Fc), 1);
    EXPECT_EQ(net->countKind(LayerKind::Lrn), 0);
}

TEST(Network, ConcatReadsAllBranchBuffers)
{
    auto net = forkJoinNet();
    const LayerNode &concat = net->node(4);
    ASSERT_EQ(concat.inputs.size(), 2u);
    // Both branch buffers list the concat as a reader.
    for (LayerId in_id : concat.inputs) {
        const Buffer &b = net->buffer(net->node(in_id).yBuffer);
        EXPECT_EQ(b.readers.back(), 4);
    }
}

TEST(NetworkDeath, MismatchedShapesRejected)
{
    TensorShape in{2, 3, 8, 8};
    Network net("bad", in);
    ConvParams cp;
    cp.outChannels = 4;
    cp.padH = cp.padW = 1;
    net.addLayer(makeConv("c1", in, cp), {kInputLayer});
    // Declares an input shape that does not match c1's output.
    LayerSpec wrong = makeConv("c2", TensorShape{2, 8, 8, 8}, cp);
    EXPECT_DEATH(net.addLayer(wrong, {0}), "producer yields");
}

TEST(NetworkDeath, FinalizeTwicePanics)
{
    auto net = linearNet();
    EXPECT_DEATH(net->finalize(), "finalize");
}

TEST(NetworkDeath, ForwardReferenceRejected)
{
    TensorShape in{2, 3, 8, 8};
    Network net("bad", in);
    ConvParams cp;
    cp.outChannels = 4;
    cp.padH = cp.padW = 1;
    net.addLayer(makeConv("c1", in, cp), {kInputLayer});
    LayerSpec next = makeConv("c2", net.node(0).spec.out, cp);
    EXPECT_DEATH(net.addLayer(next, {5}), "");
}
