#include "net/network.hh"

#include "common/logging.hh"
#include "dnn/perf_model.hh"

#include <algorithm>
#include <queue>

namespace vdnn::net
{

Network::Network(std::string name, dnn::TensorShape in)
    : netName(std::move(name)), input(in)
{
    VDNN_ASSERT(input.valid(), "invalid network input shape %s",
                input.str().c_str());
}

LayerId
Network::addLayer(dnn::LayerSpec spec, std::vector<LayerId> inputs)
{
    VDNN_ASSERT(!isFinalized, "network is finalized");
    VDNN_ASSERT(!inputs.empty(), "layer '%s' has no inputs",
                spec.name.c_str());

    // Shape check: the declared input shape must match what feeds it.
    if (spec.kind == dnn::LayerKind::Concat) {
        std::int64_t channels = 0;
        for (LayerId in_id : inputs) {
            const dnn::TensorShape &s = in_id == kInputLayer
                                            ? input
                                            : node(in_id).spec.out;
            channels += s.c;
            VDNN_ASSERT(s.n == spec.out.n && s.h == spec.out.h &&
                            s.w == spec.out.w,
                        "concat '%s': branch shape %s mismatches %s",
                        spec.name.c_str(), s.str().c_str(),
                        spec.out.str().c_str());
        }
        VDNN_ASSERT(channels == spec.out.c,
                    "concat '%s': channel sum %lld != %lld",
                    spec.name.c_str(), (long long)channels,
                    (long long)spec.out.c);
    } else {
        VDNN_ASSERT(inputs.size() == 1,
                    "non-concat layer '%s' must have exactly one input",
                    spec.name.c_str());
        const dnn::TensorShape &feed =
            inputs[0] == kInputLayer ? input : node(inputs[0]).spec.out;
        VDNN_ASSERT(feed == spec.in,
                    "layer '%s': declared input %s but producer yields %s",
                    spec.name.c_str(), spec.in.str().c_str(),
                    feed.str().c_str());
    }

    LayerNode n;
    n.spec = std::move(spec);
    n.inputs = std::move(inputs);
    nodes.push_back(std::move(n));
    return LayerId(nodes.size() - 1);
}

LayerId
Network::append(dnn::LayerSpec spec)
{
    LayerId prev = nodes.empty() ? kInputLayer : LayerId(nodes.size() - 1);
    return addLayer(std::move(spec), {prev});
}

const LayerNode &
Network::node(LayerId id) const
{
    VDNN_ASSERT(id >= 0 && std::size_t(id) < nodes.size(),
                "bad layer id %d", id);
    return nodes[std::size_t(id)];
}

const std::vector<LayerId> &
Network::topoOrder() const
{
    VDNN_ASSERT(isFinalized, "network not finalized");
    return topo;
}

const Buffer &
Network::buffer(BufferId id) const
{
    VDNN_ASSERT(id >= 0 && std::size_t(id) < buffers.size(),
                "bad buffer id %d", id);
    return buffers[std::size_t(id)];
}

void
Network::computeTopoOrder()
{
    // Kahn's algorithm; ties resolved by insertion order so the layer-
    // wise execution sequence is deterministic and matches the paper's
    // layer(1)..layer(N) numbering for its example graphs.
    std::vector<int> indegree(nodes.size(), 0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        for (LayerId in_id : nodes[i].inputs) {
            if (in_id != kInputLayer)
                ++indegree[i];
        }
    }
    std::priority_queue<LayerId, std::vector<LayerId>,
                        std::greater<LayerId>>
        ready;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (indegree[i] == 0)
            ready.push(LayerId(i));
    }
    topo.clear();
    while (!ready.empty()) {
        LayerId id = ready.top();
        ready.pop();
        nodes[std::size_t(id)].topoIndex = int(topo.size());
        topo.push_back(id);
        for (LayerId c : nodes[std::size_t(id)].consumers) {
            if (--indegree[std::size_t(c)] == 0)
                ready.push(c);
        }
    }
    VDNN_ASSERT(topo.size() == nodes.size(),
                "network '%s' has a cycle (%zu of %zu layers ordered)",
                netName.c_str(), topo.size(), nodes.size());
}

void
Network::buildBuffers()
{
    buffers.clear();

    // Buffer 0: the input image batch.
    Buffer in_buf;
    in_buf.id = 0;
    in_buf.producer = kInputLayer;
    in_buf.shape = input;
    buffers.push_back(in_buf);

    // Resolve, in topo order, which buffer each layer reads and writes.
    std::vector<BufferId> out_buffer_of(nodes.size(), -1);
    auto bufferOf = [&](LayerId id) -> BufferId {
        return id == kInputLayer ? 0 : out_buffer_of[std::size_t(id)];
    };

    for (LayerId id : topo) {
        LayerNode &n = nodes[std::size_t(id)];
        BufferId x = bufferOf(n.inputs.front());
        VDNN_ASSERT(x >= 0, "layer '%s' reads an unmaterialized buffer",
                    n.spec.name.c_str());
        n.xBuffer = x;

        // Every input buffer gains this layer as a reader. CONCAT reads
        // all of its branch buffers.
        for (LayerId in_id : n.inputs) {
            Buffer &b = buffers[std::size_t(bufferOf(in_id))];
            b.readers.push_back(id);
            b.refCount += 1;
            b.lastFwdReader = id; // topo order makes the last write win
        }

        if (n.spec.inPlace()) {
            // ACTV/DROPOUT overwrite their input buffer (footnote 1).
            n.yBuffer = x;
        } else {
            Buffer b;
            b.id = BufferId(buffers.size());
            b.producer = id;
            b.shape = n.spec.out;
            buffers.push_back(b);
            n.yBuffer = b.id;
        }
        out_buffer_of[std::size_t(id)] = n.yBuffer;
    }

    // Backward users: layer L's backward needs its X buffer (weight
    // gradients, pooling argmax) and/or its Y buffer (in-place
    // activation gradients, pooling).
    for (LayerId id : topo) {
        const LayerNode &n = nodes[std::size_t(id)];
        if (n.spec.backwardNeedsX()) {
            for (LayerId in_id : n.inputs)
                buffers[std::size_t(bufferOf(in_id))].bwdUsers.push_back(id);
        }
        if (n.spec.backwardNeedsY())
            buffers[std::size_t(n.yBuffer)].bwdUsers.push_back(id);
    }
    for (Buffer &b : buffers) {
        std::sort(b.bwdUsers.begin(), b.bwdUsers.end(),
                  [this](LayerId a, LayerId c) {
                      return node(a).topoIndex < node(c).topoIndex;
                  });
        b.bwdUsers.erase(std::unique(b.bwdUsers.begin(), b.bwdUsers.end()),
                         b.bwdUsers.end());
    }
}

void
Network::markClassifier()
{
    // The classifier region starts at the first FC layer in topological
    // order; everything from there on (FC chain, dropout, loss) is
    // executed with cuBLAS, untouched by vDNN (Section IV-A).
    int first_fc = int(nodes.size());
    for (LayerId id : topo) {
        if (node(id).spec.kind == dnn::LayerKind::Fc) {
            first_fc = node(id).topoIndex;
            break;
        }
    }
    for (LayerNode &n : nodes)
        n.classifier = n.topoIndex >= first_fc;
    for (Buffer &b : buffers) {
        b.classifier =
            b.producer != kInputLayer && node(b.producer).classifier;
    }
}

void
Network::finalize()
{
    VDNN_ASSERT(!isFinalized, "finalize() called twice");
    VDNN_ASSERT(!nodes.empty(), "network '%s' has no layers",
                netName.c_str());

    // Consumer lists from producer lists.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        for (LayerId in_id : nodes[i].inputs) {
            VDNN_ASSERT(in_id == kInputLayer ||
                            (in_id >= 0 && std::size_t(in_id) < i),
                        "layer %zu feeds from invalid/later layer %d", i,
                        in_id);
            if (in_id != kInputLayer)
                nodes[std::size_t(in_id)].consumers.push_back(LayerId(i));
        }
    }

    computeTopoOrder();
    buildBuffers();
    markClassifier();
    isFinalized = true;
}

LayerId
Network::lastBwdUser(BufferId id) const
{
    const Buffer &b = buffer(id);
    if (b.bwdUsers.empty())
        return kInputLayer;
    // Backward runs in reverse topo order, so the *lowest* topo index
    // among users is the last one to need the buffer.
    return b.bwdUsers.front();
}

Bytes
Network::totalWeightBytes() const
{
    Bytes total = 0;
    for (const LayerNode &n : nodes)
        total += n.spec.weightBytes();
    return total;
}

int
Network::countKind(dnn::LayerKind kind) const
{
    int count = 0;
    for (const LayerNode &n : nodes)
        count += n.spec.kind == kind ? 1 : 0;
    return count;
}

Flops
Network::totalConvFlops() const
{
    Flops total = 0.0;
    for (const LayerNode &n : nodes) {
        if (n.spec.kind == dnn::LayerKind::Conv)
            total += dnn::PerfModel::convFlops(n.spec);
    }
    return total;
}

} // namespace vdnn::net
