/**
 * @file
 * DNN computation graph.
 *
 * A Network is a DAG of layers. Linear chains cover AlexNet/OverFeat/
 * VGG; GoogLeNet's inception modules exercise the one-to-many (fork)
 * and many-to-one (join) dependencies of Figure 3, which drive vDNN's
 * reference-count rule: a layer's input feature map may only be
 * offloaded/released by its *last* consumer.
 *
 * Besides the layer DAG, finalize() derives the *buffer* view of the
 * graph: each non-in-place layer's output Y creates a buffer; in-place
 * layers (ACTV/DROPOUT, footnote 1 of the paper) alias and overwrite
 * their input buffer. All memory-management decisions (offload,
 * release, prefetch) operate on buffers.
 */

#ifndef VDNN_NET_NETWORK_HH
#define VDNN_NET_NETWORK_HH

#include "common/types.hh"
#include "dnn/layer.hh"

#include <string>
#include <vector>

namespace vdnn::net
{

using LayerId = int;
using BufferId = int;

/** Pseudo layer-id denoting the network input batch. */
inline constexpr LayerId kInputLayer = -1;

struct LayerNode
{
    dnn::LayerSpec spec;
    /** Producer layers (kInputLayer marks the network input). */
    std::vector<LayerId> inputs;
    /** Layers consuming this layer's output. */
    std::vector<LayerId> consumers;
    /** Position in the topological execution order. */
    int topoIndex = -1;
    /** Buffer this layer reads as X (first input's buffer). */
    BufferId xBuffer = -1;
    /** Buffer this layer writes as Y (== xBuffer for in-place layers). */
    BufferId yBuffer = -1;
    /** Part of the classifier tail (first FC layer onward)? */
    bool classifier = false;
};

/**
 * A feature-map buffer: the unit of vDNN offload/release decisions.
 */
struct Buffer
{
    BufferId id = -1;
    /** Creating layer; kInputLayer for the input image batch. */
    LayerId producer = kInputLayer;
    dnn::TensorShape shape;
    /** Layers that read this buffer as their X, in topo order. */
    std::vector<LayerId> readers;
    /**
     * Reference count of pending consumers during forward propagation
     * (the Refcnt of Figure 3). Static value; the executor decrements a
     * copy at run time.
     */
    int refCount = 0;
    /** Last forward reader (topo order); -1 when never read. */
    LayerId lastFwdReader = kInputLayer;
    /** Layers whose *backward* pass reads this buffer (X or Y role). */
    std::vector<LayerId> bwdUsers;
    /** Belongs to the classifier region (not vDNN-managed). */
    bool classifier = false;

    Bytes bytes() const { return shape.bytes(); }
};

class Network
{
  public:
    /**
     * @param name  display name, e.g. "VGG-16 (256)"
     * @param input the input image batch shape (N x C x H x W)
     */
    Network(std::string name, dnn::TensorShape input);

    /**
     * Append a layer fed by @p inputs (layer ids or kInputLayer).
     * The spec's input shape must match the producer's output shape
     * (channel-concatenation for CONCAT layers).
     * @return the new layer's id
     */
    LayerId addLayer(dnn::LayerSpec spec, std::vector<LayerId> inputs);

    /** Convenience for linear chains: feed from the last added layer. */
    LayerId append(dnn::LayerSpec spec);

    /**
     * Validate the DAG, compute the topological execution order,
     * consumer lists, buffer table and reference counts. Must be called
     * once after construction; the network is immutable afterwards.
     */
    void finalize();

    bool finalized() const { return isFinalized; }

    // --- topology access -------------------------------------------------
    const std::string &name() const { return netName; }
    const dnn::TensorShape &inputShape() const { return input; }
    std::int64_t batch() const { return input.n; }

    std::size_t numLayers() const { return nodes.size(); }
    const LayerNode &node(LayerId id) const;
    const std::vector<LayerId> &topoOrder() const;

    std::size_t numBuffers() const { return buffers.size(); }
    const Buffer &buffer(BufferId id) const;
    /** The buffer holding the network input batch. */
    BufferId inputBuffer() const { return 0; }

    /** Id of the last layer a given buffer must stay alive for during
     *  backward propagation; kInputLayer if unused in backward. */
    LayerId lastBwdUser(BufferId id) const;

    // --- aggregate queries -------------------------------------------------
    /** Total weight bytes (all CONV + FC layers). */
    Bytes totalWeightBytes() const;
    /** Number of layers of a given kind. */
    int countKind(dnn::LayerKind kind) const;
    /** Total forward direct-conv FLOPs (CONV layers only). */
    Flops totalConvFlops() const;

  private:
    void computeTopoOrder();
    void buildBuffers();
    void markClassifier();

    std::string netName;
    dnn::TensorShape input;
    std::vector<LayerNode> nodes;
    std::vector<Buffer> buffers;
    std::vector<LayerId> topo;
    bool isFinalized = false;
};

} // namespace vdnn::net

#endif // VDNN_NET_NETWORK_HH
