/**
 * @file
 * Cross-tenant compute/DMA overlap in multi-tenant serving.
 *
 * Iteration-granularity packing (RoundRobin) leaves the shared compute
 * engine idle whenever the active tenant stalls on its own offload or
 * prefetch DMAs — exactly the Fig. 9 "wasted time", multiplied by the
 * number of tenants. The PackedOverlap policy drives every admitted
 * tenant through its compiled IterationProgram one op at a time and
 * dispatches the next ready tenant's compute op whenever the current
 * one blocks on a stream join, so tenant B's kernels execute under
 * tenant A's transfers while the PCIe arbiter fair-shares the link
 * between the concurrent DMAs.
 *
 * Workload: 8 mixed tenants (VGG-16 (64) and AlexNet (128), all under
 * vDNN_all (m) — the stall-heaviest planner) on one 12 GB Titan X.
 *
 * Claims checked:
 *  - PackedOverlap strictly improves mean JCT over RoundRobin;
 *  - PackedOverlap strictly improves compute-engine utilization.
 */

#include "bench_common.hh"

#include "common/units.hh"
#include "serve/arrival.hh"
#include "serve/scheduler.hh"

#include <memory>

using namespace vdnn;
using namespace vdnn::bench;
using namespace vdnn::serve;

namespace
{

constexpr int kJobs = 8;

std::vector<JobSpec>
mixedWorkload()
{
    std::shared_ptr<const net::Network> vgg = net::buildVgg16(64);
    std::shared_ptr<const net::Network> alex = net::buildAlexNet(128);
    std::vector<JobSpec> specs;
    for (int i = 0; i < kJobs; ++i) {
        JobSpec spec;
        bool is_vgg = i % 2 == 0;
        spec.name = strFormat(is_vgg ? "vgg-%d" : "alex-%d", i);
        spec.network = is_vgg ? vgg : alex;
        spec.planner = std::make_shared<core::OffloadAllPlanner>(
            core::AlgoPreference::MemoryOptimal);
        spec.arrival = TimeNs(i) * 100 * kNsPerMs;
        spec.iterations = i == 0 ? 8 : 2 + i % 3;
        specs.push_back(std::move(spec));
    }
    return specs;
}

ServeReport
runCluster(SchedPolicy sched)
{
    SchedulerConfig cfg;
    cfg.policy = sched;
    Scheduler scheduler(cfg);
    for (JobSpec &spec : mixedWorkload())
        scheduler.submit(std::move(spec));
    return scheduler.run();
}

void
report()
{
    const std::vector<std::pair<const char *, SchedPolicy>> grid = {
        {"fifo-exclusive", SchedPolicy::FifoExclusive},
        {"round-robin", SchedPolicy::RoundRobin},
        {"packed-overlap", SchedPolicy::PackedOverlap},
    };

    stats::Table table(strFormat(
        "Cross-tenant overlap: %d mixed VGG-16/AlexNet vDNN_all (m) "
        "tenants on a 12 GB Titan X",
        kJobs));
    table.setColumns({"scheduler", "finished", "peak jobs", "avg jobs",
                      "mean JCT (s)", "p99 JCT (s)", "makespan (s)",
                      "compute util", "peak pool (GiB)"});

    ServeReport rr;
    ServeReport packed;
    for (const auto &[label, sched] : grid) {
        ServeReport rep = runCluster(sched);
        table.addRow(
            {label, stats::Table::cellInt(rep.finishedCount()),
             stats::Table::cellInt(rep.peakJobsInFlight),
             stats::Table::cell(rep.avgJobsInFlight, 2),
             stats::Table::cell(toSeconds(rep.meanJct()), 2),
             stats::Table::cell(toSeconds(rep.p99Jct()), 2),
             stats::Table::cell(toSeconds(rep.makespan), 2),
             stats::Table::cell(rep.computeUtilization(), 3),
             stats::Table::cell(toGiB(rep.poolPeakBytes), 2)});
        if (sched == SchedPolicy::RoundRobin)
            rr = rep;
        else if (sched == SchedPolicy::PackedOverlap)
            packed = rep;
    }
    table.print();

    stats::Comparison cmp("Cross-tenant compute/DMA overlap");
    cmp.addBool("every job finishes under both packers", true,
                rr.finishedCount() == kJobs &&
                    packed.finishedCount() == kJobs);
    cmp.addBool("packed-overlap mean JCT below round-robin", true,
                packed.meanJct() < rr.meanJct());
    cmp.addBool("packed-overlap compute utilization above round-robin",
                true,
                packed.computeUtilization() > rr.computeUtilization());
    cmp.addBool("packed-overlap makespan no worse than round-robin",
                true, packed.makespan <= rr.makespan);
    cmp.addNumeric("mean JCT reduction (x)", 1.1,
                   toSeconds(rr.meanJct()) /
                       toSeconds(packed.meanJct()),
                   /*tolerance=*/0.5);
    cmp.addInfo("round-robin compute utilization", "idles under stalls",
                strFormat("%.3f", rr.computeUtilization()));
    cmp.addInfo("packed-overlap compute utilization", "near 1.0",
                strFormat("%.3f", packed.computeUtilization()));
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("overlap_serve/mixed8_packed_overlap",
                [] { runCluster(SchedPolicy::PackedOverlap); });
    return benchMain(argc, argv, report);
}
