/**
 * @file
 * Op-granularity preemption and Salus-style buffer paging.
 *
 * PR 10's unified serve engine adds two responsiveness levers on top
 * of the golden-pinned iteration-granularity behavior:
 *
 *  - PreemptGranularity::Op lets a high-priority arrival take the
 *    device *mid-iteration*: the in-flight victim parks resident
 *    (stepper frozen at its current op boundary, no DMA) and later
 *    continues in place, cutting the arrival's first-dispatch latency
 *    from the victim's remaining iteration (~seconds) to the next
 *    event boundary (~microseconds);
 *
 *  - SchedulerConfig::bufferPaging frees resident tenants' cold
 *    prefetched-ahead device copies (Session::pageOut) when a fitting
 *    reservation still fails setup, so buffers are evicted before
 *    whole tenants.
 *
 * Both leave the admission ledger untouched in ways the extended
 * LedgerAuditor must be able to prove ("page-out" is a Zero-delta
 * Running->Running event; a parked victim replays the Zero-delta
 * suspend->resume chain).
 */

#include "serve/scheduler.hh"

#include "check/ledger_auditor.hh"
#include "common/units.hh"
#include "core/planner.hh"
#include "core/training_session.hh"
#include "net/builders.hh"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

using namespace vdnn;
using namespace vdnn::serve;
using namespace vdnn::literals;

namespace
{

std::shared_ptr<core::Planner>
vdnnAll()
{
    return std::make_shared<core::OffloadAllPlanner>(
        core::AlgoPreference::MemoryOptimal);
}

void
expectClean(const ServeReport &r)
{
    EXPECT_EQ(r.reservedBytesAtEnd, 0);
    EXPECT_EQ(r.evictedLedgerAtEnd, 0);
    check::CheckResult audit = check::auditLedger(r);
    EXPECT_TRUE(audit.ok()) << audit.report();
}

/**
 * The equivalence suite's preemption workload: four low-priority
 * OverFeat tenants (everyone fits the default device — the contended
 * resource is the SMs, not memory), then an urgent Baseline AlexNet
 * arrives mid-iteration. Only the granularity differs between runs:
 * at Iteration granularity the urgent tenant is admitted and
 * dispatched at the in-flight victim's iteration boundary (~1 s
 * away); at Op granularity the victim parks resident at its next op
 * step and the urgent tenant dispatches immediately.
 */
ServeReport
runPriorityBurst(PreemptGranularity g)
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::PreemptivePriority;
    cfg.preemptGranularity = g;
    Scheduler sched(cfg);
    for (int i = 0; i < 4; ++i) {
        JobSpec spec;
        spec.name = strFormat("bg-%02d", i);
        spec.network = net::buildOverFeat(128);
        spec.planner = vdnnAll();
        spec.priority = 0;
        spec.arrival = TimeNs(i) * kNsPerMs;
        spec.iterations = 3;
        sched.submit(std::move(spec));
    }
    JobSpec urgent;
    urgent.name = "urgent";
    urgent.network = net::buildAlexNet(64);
    urgent.planner = std::make_shared<core::BaselinePlanner>(
        core::AlgoPreference::MemoryOptimal);
    urgent.priority = 10;
    urgent.arrival = 50 * kNsPerMs;
    urgent.iterations = 2;
    sched.submit(std::move(urgent));
    return sched.run();
}

TimeNs
firstDispatchLatency(const ServeReport &r, JobId id)
{
    const JobOutcome &j = r.jobs[std::size_t(id)];
    return j.firstDispatchTime - j.arrival;
}

int
countEvents(const ServeReport &r, const char *kind)
{
    int n = 0;
    for (const LifecycleEvent &ev : r.lifecycle)
        if (ev.what && std::string(ev.what) == kind)
            ++n;
    return n;
}

} // namespace

// --- op-granularity preemption -----------------------------------------------

TEST(OpPreemption, FirstDispatchBeforeVictimIterationCompletes)
{
    const JobId urgent = 4;
    ServeReport iter = runPriorityBurst(PreemptGranularity::Iteration);
    ServeReport op = runPriorityBurst(PreemptGranularity::Op);

    // Both granularities drain the whole burst and replay cleanly.
    EXPECT_EQ(iter.finishedCount(), 5);
    EXPECT_EQ(op.finishedCount(), 5);
    expectClean(iter);
    expectClean(op);

    ASSERT_EQ(iter.jobs[urgent].state, JobState::Finished);
    ASSERT_EQ(op.jobs[urgent].state, JobState::Finished);

    // Iteration granularity never preempts here — everyone fits, so
    // the urgent tenant is simply admitted at the in-flight victim's
    // next boundary and waits out its remaining iteration
    // (OverFeat-128 runs ~1 s per iteration). Op granularity takes
    // the device mid-iteration instead: the in-flight victim parks
    // resident and the urgent tenant's first kernel dispatches within
    // single-digit milliseconds of arrival.
    EXPECT_EQ(iter.jobs[urgent].victimsPreempted, 0);
    EXPECT_GE(op.jobs[urgent].victimsPreempted, 1);
    TimeNs iterLat = firstDispatchLatency(iter, urgent);
    TimeNs opLat = firstDispatchLatency(op, urgent);
    EXPECT_GE(iterLat, 100 * kNsPerMs);
    EXPECT_LT(opLat, 10 * kNsPerMs);
    EXPECT_GE(iterLat, 10 * opLat);

    // The fast switch moved no bytes: the victim was parked resident
    // (suspend) and continued in place (resume) — never evicted, so
    // no tenant's preemptions (== evictions) counter moved and the
    // audit above proved the suspend->resume chain replays with a
    // frozen ledger.
    EXPECT_GT(countEvents(op, "suspend"), 0);
    EXPECT_EQ(countEvents(op, "suspend"), countEvents(op, "resume"));
    EXPECT_EQ(countEvents(op, "evict"), 0);
    for (JobId id = 0; id <= urgent; ++id)
        EXPECT_EQ(op.jobs[std::size_t(id)].preemptions, 0) << id;
}

TEST(OpPreemption, ReportedPreemptionLatencyTracksGranularity)
{
    ServeReport iter = runPriorityBurst(PreemptGranularity::Iteration);
    ServeReport op = runPriorityBurst(PreemptGranularity::Op);

    // Only jobs that displaced a victim sample the metric (arrival ->
    // first dispatch). At iteration granularity nobody does — the
    // urgent tenant just waits for a boundary, which is exactly the
    // unresponsiveness the metric is meant to expose, so its absence
    // from the distribution is the finding. At op granularity the
    // urgent tenant's dispatch preemption contributes the sample, and
    // it sits at event-boundary scale.
    EXPECT_TRUE(iter.preemptionLatencies().empty());
    ASSERT_FALSE(op.preemptionLatencies().empty());
    EXPECT_LT(op.p95PreemptionLatency(), 10 * kNsPerMs);

    // The raw first-dispatch gap between the two runs is the headline
    // claim; the sampled p95 must agree with the record it came from.
    EXPECT_EQ(op.p95PreemptionLatency(),
              firstDispatchLatency(op, 4));
    EXPECT_GE(firstDispatchLatency(iter, 4),
              10 * kNsPerMs + 10 * op.p95PreemptionLatency());
}

// --- buffer paging: Session::pageOut core path -------------------------------

TEST(BufferPaging, PageOutFreesColdCopiesMidIterationAndIterationCompletes)
{
    // Drive a vDNN_all VGG-16 session one op at a time and, after
    // every boundary, ask it to page cold device copies out. During
    // the backward pass the prefetcher runs ahead of the compute
    // stream, so there are windows where a prefetched feature map's
    // first backward use is still layers away — exactly the copies
    // pageOut may drop (the host copy stays valid; the buffer is
    // re-fetched on demand). The iteration must still complete.
    auto network = net::buildVgg16(64);
    core::SessionConfig cfg;
    cfg.planner = std::make_shared<core::OffloadAllPlanner>(
        core::AlgoPreference::MemoryOptimal);
    core::Session session(*network, cfg);
    ASSERT_TRUE(session.setup());

    // No stepper live: nothing is pageable between iterations.
    EXPECT_EQ(session.pageOut(1_GiB), 0);

    core::IterationStepper &st = session.beginIteration();
    Bytes freed = 0;
    int windows = 0;
    while (!st.finished()) {
        st.step(/*blocking=*/true);
        if (st.finished())
            break;
        Bytes got = session.pageOut(64_MiB);
        freed += got;
        windows += got > 0;
    }
    core::IterationResult r = session.completeIteration();
    EXPECT_TRUE(r.ok) << r.failReason;

    // The probe found real cold copies to drop...
    EXPECT_GT(freed, 0);
    EXPECT_GT(windows, 0);

    // ...and a second, unprobed iteration still runs to completion on
    // the re-fetched state.
    core::IterationStepper &st2 = session.beginIteration();
    while (!st2.finished())
        st2.step(/*blocking=*/true);
    EXPECT_TRUE(session.completeIteration().ok);
    session.teardown();
}

// --- buffer paging: scheduler path under PackedOverlap -----------------------

namespace
{

/**
 * A planner whose admission estimate is the honest vDNN_all floor but
 * whose execution plan keeps three of every four offloadable buffers
 * resident: the tenant overshoots its reservation at run time
 * (squeezing the co-tenant's iterations into OOM aborts) while the
 * still-offloaded quarter keeps its prefetcher staging cold pageable
 * copies. The complement of test_serve's UnderestimatingPlanner,
 * which keeps nothing offloaded and is therefore unpageable.
 */
class OvershootingPlanner : public core::Planner
{
  public:
    std::string name() const override { return "overshooter"; }

    core::MemoryPlan plan(const net::Network &net,
                          const core::PlannerContext &ctx) override
    {
        core::MemoryPlan p =
            core::OffloadAllPlanner(core::AlgoPreference::MemoryOptimal)
                .plan(net, ctx);
        int k = 0;
        for (core::BufferDirective &d : p.buffers)
            if (d.offloaded() && (k++ % 4 != 0))
                d = core::BufferDirective{}; // keep resident
        return p;
    }

    core::MemoryPlan admissionPlan(const net::Network &net,
                                   const core::PlannerContext &ctx) override
    {
        return core::OffloadAllPlanner(
                   core::AlgoPreference::MemoryOptimal)
            .plan(net, ctx);
    }
};

ServeReport
runPagingScenario(Bytes capacity)
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::PackedOverlap;
    cfg.bufferPaging = true;
    cfg.admissionSafety = 1.0;
    // The victim of the overshoot keeps retrying at its original
    // reservation: every abort exercises the paging path instead of
    // inflating its way past the squeeze or failing out.
    cfg.oomBackoffScale = 1.0;
    cfg.maxOomRequeues = 1000;
    cfg.gpu.dramCapacity = capacity;
    Scheduler sched(cfg);

    JobSpec hog;
    hog.name = "overshooter";
    hog.network = net::buildVgg16(64);
    hog.planner = std::make_shared<OvershootingPlanner>();
    hog.iterations = 2;
    sched.submit(std::move(hog));

    // Arrives mid-backward-pass of the overshooter's first iteration
    // (VGG-16 (64) runs ~3.2 s per iteration), while the
    // overshooter's prefetcher is staging ahead.
    JobSpec probe;
    probe.name = "newcomer";
    probe.network = net::buildVgg16(64);
    probe.planner = vdnnAll();
    probe.arrival = 1800 * kNsPerMs;
    probe.iterations = 2;
    sched.submit(std::move(probe));
    return sched.run();
}

} // namespace

TEST(BufferPaging, SchedulerPagesBuffersBeforeTenantsAndAuditReplays)
{
    // The overshooter's run-time footprint exceeds its reservation by
    // most of its feature maps, so at tight pool capacities the
    // ledger-approved newcomer's packed iterations abort with OOM —
    // and each abort must page the overshooter's cold copies so the
    // retry runs against real headroom. The exact capacity where the
    // squeeze bites depends on the memory model, so sweep and verify
    // the first capacity that triggers paging end to end.
    bool paged = false;
    for (Bytes cap : {Bytes(6.5 * double(1_GiB)), 6_GiB,
                      Bytes(7.5 * double(1_GiB)), 7_GiB, 8_GiB}) {
        ServeReport r = runPagingScenario(cap);
        if (r.totalPageOuts() == 0)
            continue;
        paged = true;

        // The page-out events are in the lifecycle trail and the
        // extended auditor replays them (Zero-delta Running->Running,
        // outcome counters matching the log).
        int events = 0;
        for (const LifecycleEvent &ev : r.lifecycle)
            if (ev.what && std::string(ev.what) == "page-out")
                ++events;
        EXPECT_GT(events, 0);
        expectClean(r);

        // Paging is buffers-before-tenants: the overshooter donated
        // buffers instead of being evicted, and both tenants finish.
        EXPECT_EQ(r.finishedCount(), 2);
        EXPECT_EQ(r.jobs[0].pageOuts, events);
        EXPECT_EQ(r.jobs[0].preemptions, 0);
        EXPECT_EQ(r.jobs[1].preemptions, 0);
        EXPECT_GE(r.jobs[1].oomRequeues, 1);
        break;
    }
    ASSERT_TRUE(paged)
        << "no capacity in the sweep triggered the paging path";
}
