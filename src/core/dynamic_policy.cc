#include "core/dynamic_policy.hh"

#include "common/logging.hh"
#include "dnn/cudnn_sim.hh"

#include <algorithm>

namespace vdnn::core
{

namespace
{

/**
 * One derivation run: the profiling state shared by the passes. The
 * trial device is a private simulated GPU whose capacity is the
 * context's available share — profiling must not disturb (or assume
 * more than) the real device.
 */
struct Derivation
{
    Derivation(const net::Network &net_, const PlannerContext &ctx,
               ExecutorConfig exec)
        : net(net_), gpu(ctx.gpu), execCfg(exec),
          contention(ctx.contention)
    {
        gpu.dramCapacity = ctx.capacity();
        cudnn = std::make_unique<dnn::CudnnSim>(gpu);
    }

    TrialRecord trial(const MemoryPlan &plan, const std::string &what,
                      IterationResult *detail = nullptr);
    MemoryPlan staticPlan(bool conv_only, AlgoPreference pref);
    MemoryPlan noOffloadPlan(AlgoPreference pref);
    bool greedy(bool conv_only, MemoryPlan &out);

    const net::Network &net;
    gpu::GpuSpec gpu;
    std::unique_ptr<dnn::CudnnSim> cudnn;
    ExecutorConfig execCfg;
    bool contention;
    std::vector<TrialRecord> trials;
};

TrialRecord
Derivation::trial(const MemoryPlan &plan, const std::string &what,
                  IterationResult *detail)
{
    TrialRecord rec;
    rec.description = what;

    gpu::Runtime rt(gpu, contention);
    MemoryManager mm(rt);
    Executor ex(net, *cudnn, rt, mm, plan, execCfg);
    if (!ex.setup()) {
        rec.passed = false;
        rec.failReason =
            strFormat("setup OOM ('%s', requested %lld bytes)",
                      mm.pool().lastOom().tag.c_str(),
                      (long long)mm.pool().lastOom().requested);
        return rec;
    }
    IterationResult res = ex.runIteration();
    rec.passed = res.ok;
    rec.makespan = res.makespan();
    rec.failReason = res.failReason;
    if (detail)
        *detail = res;
    ex.teardown();
    return rec;
}

MemoryPlan
Derivation::staticPlan(bool conv_only, AlgoPreference pref)
{
    PlannerContext ctx = PlannerContext::exclusive(gpu, contention);
    if (conv_only)
        return OffloadConvPlanner(pref).plan(net, ctx);
    return OffloadAllPlanner(pref).plan(net, ctx);
}

MemoryPlan
Derivation::noOffloadPlan(AlgoPreference pref)
{
    // Layer-wise vDNN execution with an empty offload set: feature maps
    // stay resident, but allocation is still per layer (workspace is
    // transient, dead buffers are released).
    MemoryPlan plan = staticPlan(/*conv_only=*/true, pref);
    plan.clearOffloads();
    plan.provenance = strFormat("dyn: no offload %s",
                                algoPreferenceName(pref));
    return plan;
}

bool
Derivation::greedy(bool conv_only, MemoryPlan &out)
{
    // Start from the fastest algorithm everywhere and locally downgrade
    // the overflowing layer until the configuration fits (or a
    // non-workspace allocation fails, which algorithms cannot fix).
    MemoryPlan plan =
        staticPlan(conv_only, AlgoPreference::PerformanceOptimal);
    const char *set_name = conv_only ? "vDNN_conv" : "vDNN_all";

    for (int round = 0; round < DynamicPlanner::kMaxGreedyTrials;
         ++round) {
        IterationResult detail;
        TrialRecord rec =
            trial(plan, strFormat("greedy %s round %d", set_name, round),
                  &detail);
        trials.push_back(rec);
        if (rec.passed) {
            plan.provenance = strFormat(
                "dyn: greedy %s (%d downgrade rounds)", set_name, round);
            out = std::move(plan);
            return true;
        }
        if (detail.failKind != FailKind::Workspace ||
            detail.failLayer == net::kInputLayer) {
            return false; // algorithms cannot fix this overflow
        }
        // Downgrade: next fastest algorithm with strictly smaller
        // workspace than the one that overflowed.
        const auto &spec = net.node(detail.failLayer).spec;
        dnn::ConvAlgo cur = plan.algos[std::size_t(detail.failLayer)];
        Bytes cur_ws = dnn::convWorkspaceBytes(cur, spec);
        if (cur_ws <= 0)
            return false; // already at the zero-workspace floor
        dnn::ConvAlgo next = dnn::kMemoryOptimalAlgo;
        for (const auto &perf : cudnn->findConvAlgorithms(spec)) {
            if (perf.workspace < cur_ws) {
                next = perf.algo;
                break;
            }
        }
        plan.algos[std::size_t(detail.failLayer)] = next;
    }
    return false;
}

} // namespace

DynamicPlanner::DynamicPlanner(ExecutorConfig exec) : execCfg(exec) {}

MemoryPlan
DynamicPlanner::admissionPlan(const net::Network &net,
                              const PlannerContext &ctx)
{
    MemoryPlan floor =
        OffloadAllPlanner(AlgoPreference::MemoryOptimal).plan(net, ctx);
    floor.provenance = "dyn: admission floor (vDNN_all (m))";
    return floor;
}

MemoryPlan
DynamicPlanner::plan(const net::Network &net, const PlannerContext &ctx)
{
    Derivation d(net, ctx, execCfg);
    auto finish = [&](MemoryPlan plan) {
        plan.trials = std::move(d.trials);
        return plan;
    };

    // Pass 1: the least-memory configuration decides trainability.
    MemoryPlan all_m =
        d.staticPlan(/*conv_only=*/false, AlgoPreference::MemoryOptimal);
    TrialRecord base = d.trial(all_m, "vDNN_all (m) trainability probe");
    d.trials.push_back(base);
    if (!base.passed) {
        all_m.feasible = false;
        all_m.failReason = base.failReason;
        all_m.provenance = "dyn: untrainable";
        return finish(std::move(all_m));
    }

    // Pass 2: fastest algorithms, no offload — the performance ideal.
    MemoryPlan fast = d.noOffloadPlan(AlgoPreference::PerformanceOptimal);
    TrialRecord fast_rec = d.trial(fast, "no offload (p)");
    d.trials.push_back(fast_rec);
    if (fast_rec.passed)
        return finish(std::move(fast));

    // Pass 3: fastest algorithms with static offload sets.
    for (bool conv_only : {true, false}) {
        MemoryPlan p =
            d.staticPlan(conv_only, AlgoPreference::PerformanceOptimal);
        const char *set_name = conv_only ? "vDNN_conv" : "vDNN_all";
        TrialRecord rec = d.trial(p, strFormat("%s (p)", set_name));
        d.trials.push_back(rec);
        if (rec.passed) {
            p.provenance = strFormat("dyn: %s (p)", set_name);
            return finish(std::move(p));
        }
    }

    // Pass 4: greedy per-layer downgrade under conv, then all.
    MemoryPlan greedy_plan;
    if (d.greedy(/*conv_only=*/true, greedy_plan))
        return finish(std::move(greedy_plan));
    if (d.greedy(/*conv_only=*/false, greedy_plan))
        return finish(std::move(greedy_plan));

    // Pass 5: fall back to the known-good least-memory configuration.
    all_m.provenance = "dyn: fallback vDNN_all (m)";
    return finish(std::move(all_m));
}

} // namespace vdnn::core
