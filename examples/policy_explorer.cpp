/**
 * @file
 * Policy explorer: sweep the standard memory planners (plus the
 * compressed-DMA variant) for a chosen benchmark network and GPU,
 * printing the memory/performance trade-off surface and each plan's
 * provenance.
 *
 * Usage: policy_explorer [network] [gpu]
 *   network: alexnet | overfeat | googlenet | vgg16-64 | vgg16-128 |
 *            vgg16-256 | vgg116 | vgg216 | vgg316 | vgg416  (default
 *            vgg16-128)
 *   gpu:     titanx | pascal | k40 | small                (default
 *            titanx)
 */

#include "common/logging.hh"
#include "common/units.hh"
#include "core/dynamic_policy.hh"
#include "core/planner.hh"
#include "core/training_session.hh"
#include "net/builders.hh"
#include "stats/table.hh"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace vdnn;
using namespace vdnn::core;

namespace
{

std::unique_ptr<net::Network>
pickNetwork(const std::string &name)
{
    if (name == "alexnet")
        return net::buildAlexNet(128);
    if (name == "overfeat")
        return net::buildOverFeat(128);
    if (name == "googlenet")
        return net::buildGoogLeNet(128);
    if (name == "vgg16-64")
        return net::buildVgg16(64);
    if (name == "vgg16-128")
        return net::buildVgg16(128);
    if (name == "vgg16-256")
        return net::buildVgg16(256);
    if (name == "vgg116")
        return net::buildVggDeep(116, 32);
    if (name == "vgg216")
        return net::buildVggDeep(216, 32);
    if (name == "vgg316")
        return net::buildVggDeep(316, 32);
    if (name == "vgg416")
        return net::buildVggDeep(416, 32);
    fatal("unknown network '%s'", name.c_str());
}

gpu::GpuSpec
pickGpu(const std::string &name)
{
    if (name == "titanx")
        return gpu::titanXMaxwell();
    if (name == "pascal")
        return gpu::titanXPascal();
    if (name == "k40")
        return gpu::teslaK40();
    if (name == "small")
        return gpu::smallGpu4GiB();
    fatal("unknown gpu '%s'", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string net_name = argc > 1 ? argv[1] : "vgg16-128";
    std::string gpu_name = argc > 2 ? argv[2] : "titanx";

    auto network = pickNetwork(net_name);
    gpu::GpuSpec spec = pickGpu(gpu_name);
    std::printf("network %s on %s (%.1f GB, %.1f TFLOPS)\n",
                network->name().c_str(), spec.name.c_str(),
                double(spec.dramCapacity) / 1e9, spec.peakFlops / 1e12);

    const std::vector<std::shared_ptr<Planner>> planners = {
        std::make_shared<BaselinePlanner>(AlgoPreference::MemoryOptimal),
        std::make_shared<BaselinePlanner>(
            AlgoPreference::PerformanceOptimal),
        std::make_shared<OffloadConvPlanner>(
            AlgoPreference::MemoryOptimal),
        std::make_shared<OffloadConvPlanner>(
            AlgoPreference::PerformanceOptimal),
        std::make_shared<OffloadAllPlanner>(AlgoPreference::MemoryOptimal),
        std::make_shared<OffloadAllPlanner>(
            AlgoPreference::PerformanceOptimal),
        std::make_shared<CompressedOffloadPlanner>(
            AlgoPreference::MemoryOptimal),
        std::make_shared<DynamicPlanner>(),
    };

    stats::Table table("memory-planner sweep");
    table.setColumns({"planner", "trains?", "iteration (ms)",
                      "max GPU (MiB)", "avg GPU (MiB)",
                      "offload (MiB)", "PCIe (MiB)", "stall (ms)"});
    std::vector<std::pair<std::string, std::string>> provenance;
    for (const auto &planner : planners) {
        SessionConfig cfg;
        cfg.planner = planner;
        cfg.gpu = spec;
        auto r = runSession(*network, cfg);
        if (!r.trainable) {
            table.addRow(
                {planner->name(), "no", "-", "-", "-", "-", "-", "-"});
            provenance.emplace_back(planner->name(),
                                    r.plan.provenance.empty()
                                        ? "(no plan: " + r.failReason +
                                              ")"
                                        : r.plan.provenance);
            continue;
        }
        table.addRow({r.configName, "yes",
                      stats::Table::cell(toMs(r.iterationTime), 1),
                      stats::Table::cell(toMiB(r.maxTotalUsage), 0),
                      stats::Table::cell(toMiB(r.avgTotalUsage), 0),
                      stats::Table::cell(
                          toMiB(r.offloadedBytesPerIter), 0),
                      stats::Table::cell(toMiB(r.pcieBytesPerIter), 0),
                      stats::Table::cell(toMs(r.transferStallTime), 1)});
        provenance.emplace_back(r.configName, r.plan.provenance);
    }
    table.print();

    std::printf("\nplan provenance:\n");
    for (const auto &[name, how] : provenance)
        std::printf("  %-18s %s\n", name.c_str(), how.c_str());
    return 0;
}
