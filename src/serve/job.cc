#include "serve/job.hh"

#include "common/logging.hh"

namespace vdnn::serve
{

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Pending:
        return "pending";
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Suspended:
        return "suspended";
      case JobState::Evicted:
        return "evicted";
      case JobState::Finished:
        return "finished";
      case JobState::Failed:
        return "failed";
      case JobState::Rejected:
        return "rejected";
    }
    return "?";
}

bool
jobStateLive(JobState s)
{
    return s == JobState::Running || s == JobState::Suspended ||
           s == JobState::Evicted;
}

JobId
JobQueue::take(std::size_t i)
{
    VDNN_ASSERT(i < ids.size(), "queue index %zu out of range", i);
    JobId id = ids[i];
    ids.erase(ids.begin() + std::ptrdiff_t(i));
    return id;
}

} // namespace vdnn::serve
