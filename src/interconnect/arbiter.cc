#include "interconnect/arbiter.hh"

#include "common/logging.hh"

#include <algorithm>

namespace vdnn::ic
{

FairShareArbiter::ClientState &
FairShareArbiter::stateFor(int client)
{
    VDNN_ASSERT(client >= 0, "negative arbiter client id %d", client);
    if (std::size_t(client) >= clients.size())
        clients.resize(std::size_t(client) + 1);
    return clients[std::size_t(client)];
}

void
FairShareArbiter::setWeight(int client, double w)
{
    VDNN_ASSERT(w > 0.0, "arbiter weight must be positive (client %d)",
                client);
    stateFor(client).weight = w;
}

double
FairShareArbiter::weight(int client) const
{
    if (client < 0 || std::size_t(client) >= clients.size())
        return 1.0;
    return clients[std::size_t(client)].weight;
}

std::size_t
FairShareArbiter::pick(const std::vector<int> &candidates)
{
    VDNN_ASSERT(!candidates.empty(), "pick() from an empty queue");

    auto norm_of = [this](int c) {
        if (c < 0 || std::size_t(c) >= clients.size())
            return 0.0;
        const ClientState &state = clients[std::size_t(c)];
        return double(state.served) / state.weight;
    };

    // Bounded deficit: forgive service history beyond kMaxCreditBytes
    // of normalized credit, so a tenant that was idle while others
    // moved data uncontended cannot starve them on (re)arrival.
    double max_norm = 0.0;
    for (int c : candidates)
        max_norm = std::max(max_norm, norm_of(c));
    for (int c : candidates) {
        ClientState &state = stateFor(c);
        double floor_norm =
            max_norm - double(kMaxCreditBytes) / state.weight;
        if (double(state.served) / state.weight < floor_norm)
            state.served = Bytes(floor_norm * state.weight);
    }

    std::size_t best = 0;
    double best_norm = 0.0;
    bool have_best = false;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        double norm = norm_of(candidates[i]);
        // Strict < keeps the earliest (FIFO) transfer on ties, and the
        // first queued transfer of each client.
        if (!have_best || norm < best_norm) {
            have_best = true;
            best = i;
            best_norm = norm;
        }
    }
    return best;
}

void
FairShareArbiter::charge(int client, Bytes bytes)
{
    VDNN_ASSERT(bytes >= 0, "negative service charge");
    stateFor(client).served += bytes;
}

Bytes
FairShareArbiter::servedBytes(int client) const
{
    if (client < 0 || std::size_t(client) >= clients.size())
        return 0;
    return clients[std::size_t(client)].served;
}

void
FairShareArbiter::resetService()
{
    for (ClientState &state : clients)
        state.served = 0;
}

} // namespace vdnn::ic
