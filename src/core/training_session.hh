/**
 * @file
 * Top-level experiment driver: run a network under a policy and
 * collect every metric the paper's evaluation reports.
 *
 * A TrainingSession owns one simulated GPU runtime, one vDNN memory
 * manager and one executor; it resolves the policy (running the
 * vDNN_dyn profiling passes when requested), executes the requested
 * number of training iterations, and gathers memory / performance /
 * traffic / power statistics.
 */

#ifndef VDNN_CORE_TRAINING_SESSION_HH
#define VDNN_CORE_TRAINING_SESSION_HH

#include "core/dynamic_policy.hh"
#include "core/executor.hh"
#include "core/policy.hh"
#include "gpu/gpu_spec.hh"
#include "net/network.hh"
#include "stats/time_weighted.hh"

#include <string>
#include <vector>

namespace vdnn::core
{

struct SessionConfig
{
    TransferPolicy policy = TransferPolicy::Dynamic;
    AlgoMode algoMode = AlgoMode::PerformanceOptimal; ///< static only
    gpu::GpuSpec gpu;
    /**
     * Oracular GPU: removes the memory capacity bottleneck (Section
     * V-C) by growing the device pool to hold any allocation. Used to
     * normalize performance when the baseline cannot train at all.
     */
    bool oracle = false;
    int iterations = 2;
    bool contention = true;
    ExecutorConfig exec;
    bool keepTimeline = false;
    bool kernelLog = false;

    SessionConfig();
};

struct SessionResult
{
    std::string network;
    std::string configName;
    bool trainable = false;
    std::string failReason;

    Plan plan;
    std::vector<TrialRecord> trials; ///< vDNN_dyn profiling history

    // Performance (steady-state, last measured iteration).
    TimeNs iterationTime = 0;
    TimeNs featureExtractionTime = 0;
    TimeNs classifierTime = 0;
    TimeNs transferStallTime = 0;

    // GPU memory (over the whole measured window).
    Bytes maxTotalUsage = 0;
    Bytes avgTotalUsage = 0;
    Bytes maxManagedUsage = 0;
    Bytes avgManagedUsage = 0;
    Bytes persistentBytes = 0;

    // Transfers.
    Bytes offloadedBytesPerIter = 0;
    Bytes hostPeakBytes = 0;
    int offloads = 0;
    int prefetches = 0;
    int onDemandFetches = 0;

    // Power (Section V-D).
    double avgPowerW = 0.0;
    double maxPowerW = 0.0;

    // Per-layer detail (last iteration).
    std::vector<LayerTiming> layerTimings;
    std::vector<gpu::KernelRecord> kernels; ///< when kernelLog set

    // Usage timelines (when keepTimeline set).
    std::vector<stats::TimeWeighted::Sample> totalTimeline;
    std::vector<stats::TimeWeighted::Sample> managedTimeline;
};

/** Run one complete experiment. */
SessionResult runSession(const net::Network &net, SessionConfig config);

/** Short label like "vDNN_all (m)" or "base (p, oracle)". */
std::string sessionConfigName(const SessionConfig &config);

} // namespace vdnn::core

#endif // VDNN_CORE_TRAINING_SESSION_HH
