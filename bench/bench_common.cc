#include "bench_common.hh"

#include "common/logging.hh"

#include <memory>
#include <vector>

namespace vdnn::bench
{

using core::AlgoPreference;

std::shared_ptr<core::Planner>
baselinePlanner(AlgoPreference pref)
{
    return std::make_shared<core::BaselinePlanner>(pref);
}

std::shared_ptr<core::Planner>
offloadAllPlanner(AlgoPreference pref)
{
    return std::make_shared<core::OffloadAllPlanner>(pref);
}

std::shared_ptr<core::Planner>
offloadConvPlanner(AlgoPreference pref)
{
    return std::make_shared<core::OffloadConvPlanner>(pref);
}

std::shared_ptr<core::Planner>
dynamicPlanner()
{
    return std::make_shared<core::DynamicPlanner>();
}

const std::vector<PlannerPoint> &
figurePlannerGrid()
{
    static const std::vector<PlannerPoint> grid = {
        {offloadAllPlanner(AlgoPreference::MemoryOptimal), "all (m)",
         false, false, AlgoPreference::MemoryOptimal},
        {offloadAllPlanner(AlgoPreference::PerformanceOptimal),
         "all (p)", false, false, AlgoPreference::PerformanceOptimal},
        {offloadConvPlanner(AlgoPreference::MemoryOptimal), "conv (m)",
         false, false, AlgoPreference::MemoryOptimal},
        {offloadConvPlanner(AlgoPreference::PerformanceOptimal),
         "conv (p)", false, false, AlgoPreference::PerformanceOptimal},
        {dynamicPlanner(), "dyn", false, true,
         AlgoPreference::PerformanceOptimal},
        {baselinePlanner(AlgoPreference::MemoryOptimal), "base (m)",
         true, false, AlgoPreference::MemoryOptimal},
        {baselinePlanner(AlgoPreference::PerformanceOptimal),
         "base (p)", true, false,
         AlgoPreference::PerformanceOptimal},
    };
    return grid;
}

core::SessionResult
runPlanner(const net::Network &net,
           std::shared_ptr<core::Planner> planner, bool oracle)
{
    core::SessionConfig cfg;
    cfg.planner = std::move(planner);
    cfg.oracle = oracle;
    return core::runSession(net, cfg);
}

namespace
{

std::vector<std::pair<std::string, std::function<void()>>> &
registry()
{
    static std::vector<std::pair<std::string, std::function<void()>>> r;
    return r;
}

void
runRegistered(benchmark::State &state, const std::function<void()> &fn)
{
    for (auto _ : state) {
        fn();
        benchmark::ClobberMemory();
    }
}

} // namespace

void
registerSim(const std::string &name, std::function<void()> fn)
{
    registry().emplace_back(name, std::move(fn));
}

int
benchMain(int argc, char **argv, std::function<void()> report)
{
    // Keep stdout clean for the figure tables.
    setQuiet(true);
    benchmark::Initialize(&argc, argv);

    report();

    for (auto &[name, fn] : registry()) {
        benchmark::RegisterBenchmark(
            name.c_str(), [fn = fn](benchmark::State &state) {
                runRegistered(state, fn);
            })
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace vdnn::bench
