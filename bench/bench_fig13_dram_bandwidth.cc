/**
 * @file
 * Figure 13: maximum DRAM bandwidth utilization of each VGG-16 (256)
 * CONV/FC layer during forward and backward propagation (baseline).
 *
 * Paper anchors: the feature extraction layers rarely saturate the
 * 336 GB/s peak; the headroom comfortably absorbs vDNN's PCIe-rate
 * offload/prefetch traffic, bounding the worst-case interference at
 * 16/336 = 4.7%.
 */

#include "bench_common.hh"

#include "common/units.hh"
#include "dnn/layer.hh"
#include "gpu/gpu_spec.hh"

#include <map>

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

void
report()
{
    auto network = net::buildVgg16(256);
    core::SessionConfig cfg;
    cfg.planner =
        baselinePlanner(core::AlgoPreference::PerformanceOptimal);
    cfg.oracle = true;
    cfg.kernelLog = true;
    auto result = core::runSession(*network, cfg);

    // Fold the kernel log into per-layer max bandwidths.
    std::map<std::string, double> fwd_bw;
    std::map<std::string, double> bwd_bw;
    for (const auto &k : result.kernels) {
        auto colon = k.name.find(':');
        if (colon == std::string::npos)
            continue;
        std::string phase = k.name.substr(0, colon);
        std::string layer = k.name.substr(colon + 1);
        double bw = k.dramBandwidth() / 1e9;
        if (phase == "fwd")
            fwd_bw[layer] = std::max(fwd_bw[layer], bw);
        else
            bwd_bw[layer] = std::max(bwd_bw[layer], bw);
    }

    stats::Table table("Figure 13: VGG-16 (256) max DRAM bandwidth "
                       "utilization per layer (GB/s)");
    table.setColumns({"layer", "forward (GB/s)", "backward (GB/s)",
                      "of 336 GB/s peak"});
    double peak_seen = 0.0;
    const double dram_peak = gpu::titanXMaxwell().dramBandwidth / 1e9;
    for (net::LayerId id : network->topoOrder()) {
        const auto &node = network->node(id);
        if (node.spec.kind != dnn::LayerKind::Conv &&
            node.spec.kind != dnn::LayerKind::Fc) {
            continue;
        }
        double f = fwd_bw[node.spec.name];
        double b = bwd_bw[node.spec.name];
        peak_seen = std::max({peak_seen, f, b});
        table.addRow({node.spec.name, stats::Table::cell(f, 1),
                      stats::Table::cell(b, 1),
                      stats::Table::cellPercent(std::max(f, b) /
                                                dram_peak)});
    }
    table.print();

    double pcie = gpu::titanXMaxwell().pcie.rawBandwidth / 1e9;
    stats::Comparison cmp("Figure 13");
    cmp.addBool("CONV layers never saturate the 336 GB/s peak", true,
                peak_seen < dram_peak);
    cmp.addBool("headroom exceeds the 16 GB/s PCIe traffic", true,
                dram_peak - peak_seen > pcie);
    cmp.addNumeric("worst-case PCIe interference bound (%)", 4.7,
                   100.0 * pcie / dram_peak, 0.05);
    cmp.addInfo("max layer bandwidth", "(figure: <= ~200 GB/s)",
                strFormat("%.0f GB/s", peak_seen));
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("fig13/kernel_bandwidth_log_vgg16_256", [] {
        auto network = net::buildVgg16(256);
        core::SessionConfig cfg;
        cfg.planner =
            baselinePlanner(core::AlgoPreference::PerformanceOptimal);
        cfg.oracle = true;
        cfg.kernelLog = true;
        benchmark::DoNotOptimize(
            core::runSession(*network, cfg).kernels.size());
    });
    return benchMain(argc, argv, report);
}
