/**
 * @file
 * Multi-tenant serving demo: pack a queue of VGG-16 training jobs
 * onto one simulated 12 GB Titan X and compare scheduling/memory
 * policies.
 *
 * The status quo (FIFO-exclusive, baseline allocator) runs one job at
 * a time with head-of-line blocking. vDNN's reduced residency lets
 * the round-robin scheduler admit several tenants at once: queueing
 * delay collapses and short jobs stop waiting behind long ones.
 *
 * The final configuration demos mixed-priority arrivals under
 * SchedPolicy::PreemptivePriority: every third job is submitted as
 * high priority, runs ahead of the low-priority mix, and preempts
 * incumbents (suspend -> evict -> resume) when admission is tight —
 * watch the `prio`/`preempt` columns and the high-priority JCTs.
 *
 * Usage: serve_cluster [njobs] [batch]
 */

#include "common/logging.hh"
#include "common/random.hh"
#include "common/units.hh"
#include "core/planner.hh"
#include "net/builders.hh"
#include "serve/arrival.hh"
#include "serve/scheduler.hh"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>

using namespace vdnn;
using namespace vdnn::serve;

namespace
{

using PlannerFactory = std::function<std::shared_ptr<core::Planner>()>;

PlannerFactory
baselineM()
{
    return [] {
        return std::make_shared<core::BaselinePlanner>(
            core::AlgoPreference::MemoryOptimal);
    };
}

PlannerFactory
offloadAllM()
{
    return [] {
        return std::make_shared<core::OffloadAllPlanner>(
            core::AlgoPreference::MemoryOptimal);
    };
}

ServeReport
runCluster(const std::shared_ptr<const net::Network> &network,
           int njobs, SchedPolicy sched, const PlannerFactory &planner,
           bool mixed_priorities = false)
{
    SchedulerConfig cfg;
    cfg.policy = sched;

    Scheduler scheduler(cfg);

    // The same deterministic workload for every configuration:
    // Poisson arrivals (2 jobs/s) and budgets mixing short fine-tune
    // jobs with longer training runs. In the mixed-priority demo
    // every third job is urgent.
    SplitMix64 rng(42);
    std::vector<TimeNs> arrivals = poissonArrivals(njobs, 2.0, rng);
    for (int i = 0; i < njobs; ++i) {
        JobSpec spec;
        bool urgent = mixed_priorities && i % 3 == 2;
        spec.name = strFormat(urgent ? "urgent-%d" : "vgg16-%d", i);
        spec.network = network;
        spec.planner = planner();
        spec.priority = urgent ? 10 : 0;
        spec.arrival = arrivals[std::size_t(i)];
        spec.iterations = int(1 + rng.nextRange(1, 7));
        scheduler.submit(std::move(spec));
    }
    return scheduler.run();
}

} // namespace

int
main(int argc, char **argv)
{
    int njobs = argc > 1 ? std::atoi(argv[1]) : 8;
    std::int64_t batch = argc > 2 ? std::atoll(argv[2]) : 64;

    std::shared_ptr<const net::Network> network =
        net::buildVgg16(batch);
    std::printf("workload: %d x %s training jobs, Poisson arrivals, "
                "mixed iteration budgets\n\n",
                njobs, network->name().c_str());

    struct Config
    {
        const char *label;
        SchedPolicy sched;
        PlannerFactory planner;
        bool mixedPriorities;
    };
    const Config configs[] = {
        {"fifo-exclusive + baseline", SchedPolicy::FifoExclusive,
         baselineM(), false},
        {"round-robin + baseline", SchedPolicy::RoundRobin,
         baselineM(), false},
        {"fifo-exclusive + vDNN_all", SchedPolicy::FifoExclusive,
         offloadAllM(), false},
        {"round-robin + vDNN_all", SchedPolicy::RoundRobin,
         offloadAllM(), false},
        {"shortest-remaining + vDNN_all", SchedPolicy::ShortestRemaining,
         offloadAllM(), false},
        {"preemptive-priority + baseline, mixed priorities",
         SchedPolicy::PreemptivePriority, baselineM(), true},
        {"preemptive-priority + vDNN_all, mixed priorities",
         SchedPolicy::PreemptivePriority, offloadAllM(), true},
    };

    for (const Config &c : configs) {
        ServeReport rep = runCluster(network, njobs, c.sched,
                                     c.planner, c.mixedPriorities);
        std::printf("=== %s ===\n", c.label);
        rep.summaryTable().print();
        rep.jobTable().print();
        if (c.mixedPriorities) {
            std::printf("high-priority mean JCT %.1f ms vs "
                        "low-priority %.1f ms\n",
                        toMs(rep.meanJctAtPriority(10)),
                        toMs(rep.meanJctAtPriority(0)));
        }
        std::printf("\n");
    }

    std::printf("vDNN virtualization turns freed memory into tenancy:\n"
                "the round-robin + vDNN_all configuration packs several\n"
                "jobs onto the device, eliminating queueing delay;\n"
                "preemptive-priority additionally keeps urgent jobs\n"
                "ahead of the mix by suspending and evicting incumbents\n"
                "through the session lifecycle state machine.\n");
    return 0;
}
