#include "core/training_session.hh"

#include "common/logging.hh"
#include "common/units.hh"
#include "dnn/cudnn_sim.hh"

namespace vdnn::core
{

SessionConfig::SessionConfig() : gpu(gpu::titanXMaxwell()) {}

std::string
sessionConfigName(const SessionConfig &config)
{
    std::string name;
    if (config.planner) {
        name = config.planner->name();
    } else {
        name = transferPolicyName(config.policy);
        // vDNN_dyn derives per-layer algorithms; algoMode is not part
        // of its configuration and must not appear in the label.
        if (config.policy != TransferPolicy::Dynamic) {
            name += " ";
            name += algoModeName(config.algoMode);
        }
    }
    if (config.oracle)
        name += " [oracle]";
    return name;
}

// --- Session -----------------------------------------------------------------

Session::Session(const net::Network &net_, SessionConfig config_)
    : net(net_), config(std::move(config_)), spec(config.gpu)
{
    if (config.oracle) {
        // Hypothetical GPU with enough memory to hold the entire DNN.
        spec.dramCapacity = Bytes(1024) * 1024 * 1024 * 1024;
        spec.name += " (oracle)";
    }
    cudnn = std::make_unique<dnn::CudnnSim>(spec);
    ownedRt = std::make_unique<gpu::Runtime>(spec, config.contention);
    rt = ownedRt.get();
    rt->setKernelLog(config.kernelLog);
    mm = std::make_unique<MemoryManager>(*rt, config.keepTimeline);
}

Session::Session(const net::Network &net_, SessionConfig config_,
                 SharedGpu shared)
    : net(net_), config(std::move(config_)), sharedMode(true)
{
    VDNN_ASSERT(shared.runtime && shared.pool && shared.host,
                "SharedGpu handles must all be set");
    VDNN_ASSERT(!config.oracle,
                "oracle mode is meaningless on a shared device");
    rt = shared.runtime;
    spec = rt->spec();
    cudnn = std::make_unique<dnn::CudnnSim>(spec);
    mm = std::make_unique<MemoryManager>(*rt, *shared.pool, *shared.host,
                                         shared.clientId,
                                         config.keepTimeline);
}

Session::~Session()
{
    if (isActive)
        teardown();
}

bool
Session::resolvePlan()
{
    if (planResolved)
        return true;

    // The deprecated enum shim silently ignored algoMode for Dynamic
    // sessions; reject the combination instead of surprising the user.
    if (!config.planner && config.policy == TransferPolicy::Dynamic &&
        config.algoMode != AlgoMode::PerformanceOptimal) {
        failed = true;
        failure =
            "SessionConfig::algoMode is ignored by the Dynamic policy "
            "(vDNN_dyn derives per-layer algorithms); leave it at the "
            "default or construct a Planner explicitly";
        return false;
    }

    std::shared_ptr<Planner> planner = config.planner;
    if (!planner) {
        planner = plannerForPolicy(config.policy, config.algoMode,
                                   config.exec);
    }
    plannerLabel = planner->name();
    if (config.oracle)
        plannerLabel += " [oracle]";

    // Exclusive sessions plan against the whole device; a tenant of a
    // shared pool plans against its current free share, so trial-
    // running planners (vDNN_dyn) probe what it can actually get.
    PlannerContext ctx =
        sharedMode ? PlannerContext::shared(spec, mm->pool().freeBytes(),
                                            config.contention)
                   : PlannerContext::exclusive(spec, config.contention);
    execPlan = planner->plan(net, ctx);
    trials = execPlan.trials;
    if (!execPlan.feasible) {
        failed = true;
        failure = execPlan.failReason.empty() ? "untrainable"
                                              : execPlan.failReason;
        return false;
    }
    planResolved = true;
    return true;
}

bool
Session::setup()
{
    VDNN_ASSERT(!isActive, "setup() on an active session");
    if (!resolvePlan())
        return false;
    ex = std::make_unique<Executor>(net, *cudnn, *rt, *mm, execPlan,
                                    config.exec);
    if (!ex->setup()) {
        failed = true;
        failure = strFormat(
            "setup OOM ('%s', requested %s, largest free block %s)",
            mm->pool().lastOom().tag.c_str(),
            formatBytes(mm->pool().lastOom().requested).c_str(),
            formatBytes(mm->pool().lastOom().largestFree).c_str());
        ex.reset();
        return false;
    }
    failed = false;
    failure.clear();
    isActive = true;
    return true;
}

IterationResult
Session::runIteration()
{
    IterationStepper &s = beginIteration();
    while (!s.finished())
        s.step(/*blocking=*/true);
    return completeIteration();
}

IterationStepper &
Session::beginIteration()
{
    VDNN_ASSERT(isActive, "beginIteration() on an inactive session");
    return ex->beginIteration();
}

IterationStepper *
Session::activeStepper()
{
    return ex ? ex->activeStepper() : nullptr;
}

IterationResult
Session::completeIteration()
{
    VDNN_ASSERT(isActive, "completeIteration() on an inactive session");
    IterationResult r = ex->finishIteration();
    if (r.ok) {
        ++itersDone;
        lastIter = r;
    } else {
        failed = true;
        failure = r.failReason;
    }
    return r;
}

const IterationProgram &
Session::program() const
{
    VDNN_ASSERT(ex, "program() before setup()");
    return ex->program();
}

void
Session::teardown()
{
    if (!isActive)
        return;
    // Teardown precedes window close so the tracker never records
    // after finish(); the release happens at the final timestamp and
    // adds no weighted time.
    ex->teardown();
    mm->finishTracking();
    if (ownedRt)
        ownedRt->finishPowerWindow();
    isActive = false;
}

Bytes
Session::persistentBytes() const
{
    return ex ? ex->persistentBytes() : 0;
}

SessionResult
Session::result() const
{
    SessionResult r;
    r.network = net.name();
    r.configName = plannerLabel.empty() ? sessionConfigName(config)
                                        : plannerLabel;
    r.plan = execPlan;
    r.trials = trials;

    if (failed || itersDone == 0) {
        r.trainable = false;
        r.failReason = failure.empty() ? "no iteration completed"
                                       : failure;
        return r;
    }

    r.trainable = true;
    r.iterationTime = lastIter.makespan();
    r.featureExtractionTime = lastIter.featureExtractionTime();
    r.classifierTime = lastIter.classifierTime;
    r.transferStallTime = lastIter.transferStallTime;
    r.layerTimings = lastIter.layers;

    r.offloadedBytesPerIter = lastIter.offloadedBytes;
    r.pcieBytesPerIter = lastIter.pcieBytes;
    r.offloads = lastIter.offloads;
    r.prefetches = lastIter.prefetches;
    r.onDemandFetches = lastIter.onDemandFetches;

    r.maxTotalUsage = mm->totalTracker().peakBytes();
    r.avgTotalUsage = mm->totalTracker().averageBytes();
    r.maxManagedUsage = mm->managedTracker().peakBytes();
    r.avgManagedUsage = mm->managedTracker().averageBytes();
    r.persistentBytes = ex ? ex->persistentBytes() : 0;

    // Host allocator and power model are device-wide; on a shared
    // device they mix in co-tenant activity, so they are reported
    // only for exclusive sessions (the serve layer builds per-tenant
    // metrics from the pool's client accounting instead).
    if (!sharedMode) {
        r.hostPeakBytes = mm->host().peakUsage();
        r.avgPowerW = rt->power().averagePowerW();
        r.maxPowerW = rt->power().maxPowerW();
    }

    if (config.kernelLog)
        r.kernels = rt->kernelLog();
    if (config.keepTimeline) {
        r.totalTimeline = mm->totalTracker().signal().timeline();
        r.managedTimeline = mm->managedTracker().signal().timeline();
    }
    return r;
}

// --- one-shot driver ---------------------------------------------------------

SessionResult
runSession(const net::Network &net, SessionConfig config)
{
    VDNN_ASSERT(config.iterations >= 1, "need at least one iteration");

    int iterations = config.iterations;
    Session session(net, std::move(config));
    if (!session.setup())
        return session.result();

    for (int i = 0; i < iterations; ++i) {
        IterationResult last = session.runIteration();
        if (!last.ok) {
            session.teardown();
            SessionResult r = session.result();
            r.trainable = false;
            r.failReason = last.failReason;
            return r;
        }
    }

    session.teardown();
    return session.result();
}

} // namespace vdnn::core
