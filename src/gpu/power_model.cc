#include "gpu/power_model.hh"

#include "common/logging.hh"
#include "common/units.hh"

#include <algorithm>

namespace vdnn::gpu
{

PowerModel::PowerModel(const GpuSpec &spec)
    : gpu(spec), currentDraw(spec.idlePowerW)
{}

void
PowerModel::begin(TimeNs when)
{
    VDNN_ASSERT(!begun, "power window already begun");
    begun = true;
    tw.record(when, currentDraw);
}

double
PowerModel::kernelDraw(double compute_util, double dram_util) const
{
    double cu = std::clamp(compute_util, 0.0, 1.0);
    double du = std::clamp(dram_util, 0.0, 1.0);
    // A running kernel draws close to full compute power regardless of
    // its useful-FLOP efficiency: stalled warps still clock the SMs.
    // Only a modest fraction of the dynamic power tracks utilization,
    // which is what nvprof-style measurements show across convolution
    // algorithms.
    double compute = gpu.computePowerW * (0.85 + 0.15 * cu);
    double dram = gpu.dramPowerW * (0.50 + 0.50 * du);
    return compute + dram;
}

double
PowerModel::copyDraw(double bandwidth) const
{
    double du = std::clamp(bandwidth / gpu.dramBandwidth, 0.0, 1.0);
    return gpu.copyPowerW + du * gpu.dramPowerW;
}

void
PowerModel::update(TimeNs when, double delta)
{
    VDNN_ASSERT(begun, "power event before begin()");
    currentDraw += delta;
    VDNN_ASSERT(currentDraw >= gpu.idlePowerW - 1e-9,
                "power fell below idle: %f W", currentDraw);
    tw.record(when, currentDraw);
}

void
PowerModel::kernelStart(TimeNs when, double compute_util, double dram_util)
{
    update(when, kernelDraw(compute_util, dram_util));
}

void
PowerModel::kernelEnd(TimeNs when, double compute_util, double dram_util)
{
    update(when, -kernelDraw(compute_util, dram_util));
}

void
PowerModel::copyStart(TimeNs when, double bandwidth)
{
    update(when, copyDraw(bandwidth));
}

void
PowerModel::copyEnd(TimeNs when, double bandwidth)
{
    update(when, -copyDraw(bandwidth));
}

void
PowerModel::finish(TimeNs when)
{
    VDNN_ASSERT(begun, "finish() before begin()");
    tw.finish(when);
}

double
PowerModel::averagePowerW() const
{
    return tw.average();
}

double
PowerModel::maxPowerW() const
{
    return tw.peak();
}

double
PowerModel::energyJ() const
{
    return tw.average() * toSeconds(tw.duration());
}

} // namespace vdnn::gpu
