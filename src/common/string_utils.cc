#include "common/string_utils.hh"

#include "common/logging.hh"
#include "common/units.hh"

#include <cmath>

namespace vdnn
{

std::string
formatBytes(Bytes b)
{
    double v = double(b);
    const char *unit = "B";
    if (std::abs(v) >= double(kGiB)) {
        v /= double(kGiB);
        unit = "GiB";
    } else if (std::abs(v) >= double(kMiB)) {
        v /= double(kMiB);
        unit = "MiB";
    } else if (std::abs(v) >= double(kKiB)) {
        v /= double(kKiB);
        unit = "KiB";
    }
    return strFormat("%.2f %s", v, unit);
}

std::string
formatTime(TimeNs t)
{
    double v = double(t);
    const char *unit = "ns";
    if (std::abs(v) >= double(kNsPerSec)) {
        v /= double(kNsPerSec);
        unit = "s";
    } else if (std::abs(v) >= double(kNsPerMs)) {
        v /= double(kNsPerMs);
        unit = "ms";
    } else if (std::abs(v) >= double(kNsPerUs)) {
        v /= double(kNsPerUs);
        unit = "us";
    }
    return strFormat("%.2f %s", v, unit);
}

std::string
padLeft(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

} // namespace vdnn
