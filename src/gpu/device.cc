#include "gpu/device.hh"

#include "common/logging.hh"
#include "common/units.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace vdnn::gpu
{

double
KernelRecord::dramBandwidth() const
{
    TimeNs d = duration();
    if (d <= 0)
        return 0.0;
    return double(dramBytes) / toSeconds(d);
}

Device::Device(GpuSpec spec, bool enable_contention)
    : gpuSpec(std::move(spec)), contention(enable_contention),
      ownedEq(std::make_unique<sim::EventQueue>()), eq(*ownedEq),
      pcie(gpuSpec.pcie), powerModel(gpuSpec)
{
    powerModel.begin(0);
}

Device::Device(int id, GpuSpec spec, sim::EventQueue &clock,
               bool enable_contention)
    : gpuSpec(std::move(spec)), contention(enable_contention),
      devId(id), eq(clock), pcie(gpuSpec.pcie), powerModel(gpuSpec)
{
    VDNN_ASSERT(id >= 0, "negative device id %d", id);
    powerModel.begin(eq.now());
}

StreamId
Device::createStream(const std::string &name)
{
    streams.push_back(Stream{name, {}, false, false, 0});
    return StreamId(streams.size() - 1);
}

void
Device::setStreamClient(StreamId stream, int client, double weight)
{
    VDNN_ASSERT(stream >= 0 && size_t(stream) < streams.size(),
                "bad stream id %d", stream);
    streams[size_t(stream)].client = client;
    arbD2H.setWeight(client, weight);
    arbH2D.setWeight(client, weight);
}

int
Device::streamClient(StreamId stream) const
{
    VDNN_ASSERT(stream >= 0 && size_t(stream) < streams.size(),
                "bad stream id %d", stream);
    return streams[size_t(stream)].client;
}

void
Device::setTelemetry(obs::Telemetry t)
{
    tele = t;
    ctrKernels = nullptr;
    ctrDmaD2H = nullptr;
    ctrDmaH2D = nullptr;
    ctrArbGrants = nullptr;
    if (tele.metrics) {
        std::string p = "gpu" + std::to_string(devId) + ".";
        ctrKernels = &tele.metrics->counter(p + "kernels");
        ctrDmaD2H = &tele.metrics->counter(p + "dma_d2h_bytes");
        ctrDmaH2D = &tele.metrics->counter(p + "dma_h2d_bytes");
        ctrArbGrants = &tele.metrics->counter(p + "arbiter_grants");
        tele.metrics->gauge(p + "compute_busy_ns",
                            [this] { return double(computeBusy); });
    }
    if (tele.trace)
        tele.trace->setProcessName(devId, "GPU " + std::to_string(devId) +
                                              " (" + gpuSpec.name + ")");
}

CudaEventId
Device::createEvent()
{
    CudaEventId id = nextEvent++;
    events.emplace(id, EventState{});
    return id;
}

void
Device::launchKernel(StreamId stream, KernelDesc desc)
{
    VDNN_ASSERT(stream >= 0 && size_t(stream) < streams.size(),
                "bad stream id %d", stream);
    VDNN_ASSERT(desc.duration >= 0, "negative kernel duration");
    if (desc.duration == 0)
        desc.duration = 1;
    Command c;
    c.type = Command::Type::Kernel;
    c.kernel = std::move(desc);
    streams[size_t(stream)].queue.push_back(std::move(c));
    tryDispatch(stream);
}

void
Device::memcpyAsync(StreamId stream, Bytes bytes, CopyDir dir,
                    const std::string &tag)
{
    VDNN_ASSERT(stream >= 0 && size_t(stream) < streams.size(),
                "bad stream id %d", stream);
    VDNN_ASSERT(bytes >= 0, "negative copy size");
    Command c;
    c.type = Command::Type::Copy;
    c.bytes = bytes;
    c.dir = dir;
    c.tag = tag;
    streams[size_t(stream)].queue.push_back(std::move(c));
    tryDispatch(stream);
}

void
Device::recordEvent(StreamId stream, CudaEventId event)
{
    VDNN_ASSERT(events.count(event), "unknown event %lld",
                (long long)event);
    Command c;
    c.type = Command::Type::EventRecord;
    c.event = event;
    streams[size_t(stream)].queue.push_back(std::move(c));
    tryDispatch(stream);
}

void
Device::streamWaitEvent(StreamId stream, CudaEventId event)
{
    VDNN_ASSERT(events.count(event), "unknown event %lld",
                (long long)event);
    Command c;
    c.type = Command::Type::EventWait;
    c.event = event;
    streams[size_t(stream)].queue.push_back(std::move(c));
    tryDispatch(stream);
}

void
Device::tryDispatch(StreamId sid)
{
    Stream &s = streams[size_t(sid)];
    // Instant commands (event record, satisfied waits) retire in a loop;
    // engine commands hand off and return.
    while (!s.headDispatched && !s.queue.empty()) {
        Command &head = s.queue.front();
        switch (head.type) {
          case Command::Type::EventRecord: {
            CudaEventId ev = head.event;
            s.queue.pop_front();
            fireEvent(ev);
            break;
          }
          case Command::Type::EventWait: {
            EventState &es = events.at(head.event);
            if (es.fired) {
                s.waiting = false;
                s.queue.pop_front();
                break;
            }
            if (!s.waiting) {
                s.waiting = true;
                es.waiters.push_back(sid);
            }
            return;
          }
          case Command::Type::Kernel: {
            s.headDispatched = true;
            compute.waitQueue.push_back(sid);
            computeTryStart();
            return;
          }
          case Command::Type::Copy: {
            s.headDispatched = true;
            CopyDir dir = head.dir;
            engineFor(dir).waitQueue.push_back(sid);
            copyTryStart(dir);
            return;
          }
        }
    }
}

void
Device::fireEvent(CudaEventId event)
{
    EventState &es = events.at(event);
    VDNN_ASSERT(!es.fired, "event %lld recorded twice", (long long)event);
    es.fired = true;
    es.fireTime = eq.now();
    std::vector<StreamId> waiters = std::move(es.waiters);
    es.waiters.clear();
    for (StreamId w : waiters) {
        streams[size_t(w)].waiting = false;
        tryDispatch(w);
    }
}

void
Device::commandDone(StreamId sid)
{
    Stream &s = streams[size_t(sid)];
    VDNN_ASSERT(s.headDispatched, "completion for undispatched head");
    s.headDispatched = false;
    s.queue.pop_front();
    tryDispatch(sid);
}

// --- compute engine ------------------------------------------------------

double
Device::kernelComputeUtil(const KernelDesc &desc) const
{
    if (desc.duration <= 0)
        return 1.0;
    double rate = desc.flops / toSeconds(desc.duration);
    return std::clamp(rate / gpuSpec.peakFlops, 0.0, 1.0);
}

double
Device::kernelDemandBw(const KernelDesc &desc) const
{
    if (desc.duration <= 0)
        return 0.0;
    return double(desc.dramBytes) / toSeconds(desc.duration);
}

double
Device::kernelDramUtil(const KernelDesc &desc) const
{
    return std::clamp(kernelDemandBw(desc) / gpuSpec.dramBandwidth, 0.0,
                      1.0);
}

double
Device::computeRate() const
{
    if (!contention)
        return 1.0;
    double stolen = 0.0;
    if (copyD2H.busy)
        stolen += pcie.spec().dmaBandwidth;
    if (copyH2D.busy)
        stolen += pcie.spec().dmaBandwidth;
    if (stolen <= 0.0)
        return 1.0;
    double demand = kernelDemandBw(compute.desc);
    double avail = std::max(gpuSpec.dramBandwidth - stolen,
                            0.05 * gpuSpec.dramBandwidth);
    if (demand <= avail)
        return 1.0;
    return std::max(avail / demand, 0.05);
}

void
Device::refreshComputeSchedule()
{
    if (!compute.busy)
        return;
    // Account for progress at the old rate, then reschedule completion
    // at the new rate.
    TimeNs now = eq.now();
    double progressed = double(now - compute.lastUpdate) * compute.rate;
    compute.remainingBase = std::max(0.0, compute.remainingBase - progressed);
    compute.lastUpdate = now;
    compute.rate = computeRate();
    eq.deschedule(compute.completion);
    TimeNs remaining =
        TimeNs(std::ceil(compute.remainingBase / compute.rate));
    compute.completion =
        eq.scheduleAfter(std::max<TimeNs>(remaining, 0),
                         [this] { computeFinish(); });
}

void
Device::computeTryStart()
{
    if (compute.busy || compute.waitQueue.empty())
        return;
    StreamId sid = compute.waitQueue.front();
    compute.waitQueue.erase(compute.waitQueue.begin());
    Stream &s = streams[size_t(sid)];
    VDNN_ASSERT(!s.queue.empty() &&
                    s.queue.front().type == Command::Type::Kernel,
                "compute engine granted to non-kernel head");

    compute.busy = true;
    compute.stream = sid;
    compute.desc = s.queue.front().kernel;
    compute.start = eq.now();
    compute.remainingBase = double(compute.desc.duration);
    compute.lastUpdate = eq.now();
    compute.rate = computeRate();
    TimeNs first = TimeNs(std::ceil(compute.remainingBase / compute.rate));
    compute.completion =
        eq.scheduleAfter(first, [this] { computeFinish(); });
    powerModel.kernelStart(eq.now(), kernelComputeUtil(compute.desc),
                           kernelDramUtil(compute.desc));
}

void
Device::computeFinish()
{
    VDNN_ASSERT(compute.busy, "compute finish while idle");
    StreamId sid = compute.stream;
    TimeNs now = eq.now();
    powerModel.kernelEnd(now, kernelComputeUtil(compute.desc),
                         kernelDramUtil(compute.desc));
    computeBusy += now - compute.start;
    if (keepLog) {
        kLog.push_back(KernelRecord{compute.desc.name, compute.start, now,
                                    compute.desc.flops,
                                    compute.desc.dramBytes,
                                    streams[size_t(sid)].client});
    }
    if (ctrKernels)
        ctrKernels->add();
    if (tele.tracing()) {
        tele.trace->complete(devId, streams[size_t(sid)].client, "kernel",
                             compute.desc.name, compute.start, now);
    }
    compute.busy = false;
    compute.stream = -1;
    commandDone(sid);
    computeTryStart();
    if (wakeHook)
        wakeHook(wakeCtx, devId, streams[size_t(sid)].client);
}

// --- copy engines ----------------------------------------------------------

Device::CopyEngine &
Device::engineFor(CopyDir dir)
{
    return dir == CopyDir::DeviceToHost ? copyD2H : copyH2D;
}

const Device::CopyEngine &
Device::engineFor(CopyDir dir) const
{
    return dir == CopyDir::DeviceToHost ? copyD2H : copyH2D;
}

ic::FairShareArbiter &
Device::arbiterFor(CopyDir dir)
{
    return dir == CopyDir::DeviceToHost ? arbD2H : arbH2D;
}

void
Device::copyTryStart(CopyDir dir)
{
    CopyEngine &e = engineFor(dir);
    if (e.busy || e.waitQueue.empty())
        return;
    // Grant the engine by weighted fair share over the queued tenants
    // (FIFO among a single tenant's transfers, and trivially FIFO when
    // only one stream is waiting).
    std::size_t pick = 0;
    if (e.waitQueue.size() > 1) {
        std::vector<int> owners;
        owners.reserve(e.waitQueue.size());
        for (StreamId s : e.waitQueue)
            owners.push_back(streams[size_t(s)].client);
        pick = arbiterFor(dir).pick(owners);
        if (ctrArbGrants)
            ctrArbGrants->add();
        if (tele.tracing()) {
            tele.trace->instant(
                devId, owners[pick], "arbiter",
                dir == CopyDir::DeviceToHost ? "grant-d2h" : "grant-h2d",
                eq.now(),
                "{\"queued\":" + std::to_string(owners.size()) + "}");
        }
    }
    StreamId sid = e.waitQueue[pick];
    e.waitQueue.erase(e.waitQueue.begin() +
                      std::ptrdiff_t(pick));
    Stream &s = streams[size_t(sid)];
    VDNN_ASSERT(!s.queue.empty() &&
                    s.queue.front().type == Command::Type::Copy,
                "copy engine granted to non-copy head");

    e.busy = true;
    e.stream = sid;
    e.cmd = s.queue.front();
    e.start = eq.now();
    TimeNs dur = pcie.transferTime(e.cmd.bytes);
    eq.scheduleAfter(dur, [this, dir] { copyFinish(dir); });
    powerModel.copyStart(eq.now(), pcie.spec().dmaBandwidth);
    refreshComputeSchedule();
}

void
Device::copyFinish(CopyDir dir)
{
    CopyEngine &e = engineFor(dir);
    VDNN_ASSERT(e.busy, "copy finish while idle");
    StreamId sid = e.stream;
    TimeNs now = eq.now();
    powerModel.copyEnd(now, pcie.spec().dmaBandwidth);
    int client = streams[size_t(sid)].client;
    arbiterFor(dir).charge(client, e.cmd.bytes);
    auto &byClient = dir == CopyDir::DeviceToHost ? copiedByClientD2H
                                                  : copiedByClientH2D;
    if (size_t(client) >= byClient.size())
        byClient.resize(size_t(client) + 1, 0);
    byClient[size_t(client)] += e.cmd.bytes;
    if (dir == CopyDir::DeviceToHost) {
        copiedD2H += e.cmd.bytes;
        copyBusyD2H += now - e.start;
    } else {
        copiedH2D += e.cmd.bytes;
        copyBusyH2D += now - e.start;
    }
    if (keepLog) {
        cLog.push_back(CopyRecord{e.cmd.tag, e.start, now, e.cmd.bytes,
                                  dir, client});
    }
    if (dir == CopyDir::DeviceToHost ? ctrDmaD2H != nullptr
                                     : ctrDmaH2D != nullptr) {
        (dir == CopyDir::DeviceToHost ? ctrDmaD2H : ctrDmaH2D)
            ->add(double(e.cmd.bytes));
    }
    if (tele.tracing()) {
        tele.trace->complete(
            devId, client, "dma",
            e.cmd.tag.empty()
                ? (dir == CopyDir::DeviceToHost ? "d2h" : "h2d")
                : e.cmd.tag,
            e.start, now,
            "{\"bytes\":" + std::to_string(e.cmd.bytes) + ",\"dir\":\"" +
                (dir == CopyDir::DeviceToHost ? "d2h" : "h2d") + "\"}");
    }
    e.busy = false;
    e.stream = -1;
    commandDone(sid);
    copyTryStart(dir);
    refreshComputeSchedule();
    if (wakeHook)
        wakeHook(wakeCtx, devId, client);
}

// --- host synchronization ---------------------------------------------------

bool
Device::streamIdle(StreamId stream) const
{
    const Stream &s = streams.at(size_t(stream));
    return s.queue.empty() && !s.headDispatched;
}

bool
Device::eventFired(CudaEventId event) const
{
    return events.at(event).fired;
}

void
Device::synchronize(StreamId stream)
{
    while (!streamIdle(stream)) {
        if (!eq.step()) {
            panic("deadlock: stream '%s' cannot drain (waiting on an "
                  "event that is never recorded?)",
                  streams[size_t(stream)].name.c_str());
        }
    }
}

void
Device::deviceSynchronize()
{
    for (;;) {
        bool all_idle = true;
        for (size_t i = 0; i < streams.size(); ++i) {
            if (!streamIdle(StreamId(i))) {
                all_idle = false;
                break;
            }
        }
        if (all_idle)
            return;
        if (!eq.step())
            panic("deadlock in deviceSynchronize()");
    }
}

Bytes
Device::bytesCopied(CopyDir dir) const
{
    return dir == CopyDir::DeviceToHost ? copiedD2H : copiedH2D;
}

Bytes
Device::bytesCopiedByClient(CopyDir dir, int client) const
{
    const auto &m = dir == CopyDir::DeviceToHost ? copiedByClientD2H
                                                 : copiedByClientH2D;
    if (client < 0 || size_t(client) >= m.size())
        return 0;
    return m[size_t(client)];
}

const ic::FairShareArbiter &
Device::pcieArbiter(CopyDir dir) const
{
    return dir == CopyDir::DeviceToHost ? arbD2H : arbH2D;
}

TimeNs
Device::copyBusyTime(CopyDir dir) const
{
    return dir == CopyDir::DeviceToHost ? copyBusyD2H : copyBusyH2D;
}

} // namespace vdnn::gpu
