/**
 * @file
 * Scenario-generator driver: the serving workloads that prove the
 * event-driven cluster loop at scale.
 *
 * Runs the four ScenarioGenerator shapes (diurnal, bursty,
 * admission-thrash, priority-inversion) on their target clusters and
 * prints one row per scenario: completion counts, makespan, mean JCT,
 * SLO attainment and the serve-loop accounting (wakeups, fruitless
 * polls, idle advances). Every run is audited by check::auditLedger —
 * a generated workload that corrupts the admission ledger fails the
 * bench, not just a unit test.
 *
 * `bench_scenario smoke` runs shrunken adversarial scenarios only
 * (admission-thrash + priority-inversion) and exits: the CI sanitizer
 * job uses it to put generated preemption/eviction/migration traffic
 * under ASan without paying for the full-size runs.
 */

#include "bench_common.hh"

#include "check/ledger_auditor.hh"
#include "serve/placement.hh"
#include "serve/scenario_gen.hh"
#include "serve/scheduler.hh"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace vdnn;
using namespace vdnn::bench;
using namespace vdnn::serve;

namespace
{

struct ScenarioResult
{
    ScenarioConfig cfg;
    ServeReport rep;
};

ScenarioResult
runScenario(const ScenarioConfig &sc)
{
    ScenarioGenerator gen(sc);
    GeneratedScenario workload = gen.generate();

    SchedulerConfig cfg;
    cfg.policy = workload.policy;
    cfg.devices = workload.devices;
    if (workload.devices.size() > 1) {
        cfg.placement = std::make_shared<LoadBalancePlacement>();
        cfg.rebalancePeriod = 50 * kNsPerMs;
        cfg.rebalanceThreshold = 2;
    }
    Scheduler sched(cfg);
    for (JobSpec &spec : workload.jobs)
        sched.submit(std::move(spec));

    ScenarioResult out;
    out.cfg = sc;
    out.rep = sched.run();

    check::CheckResult audit = check::auditLedger(out.rep);
    VDNN_ASSERT(audit.ok(), "scenario %s: ledger audit failed:\n%s",
                scenarioKindName(sc.kind), audit.report().c_str());
    return out;
}

std::vector<ScenarioConfig>
fullConfigs()
{
    // Diurnal/bursty arrive near the cluster's service rate (the
    // production regime: ~29 s of aggregate work over 6 devices), so
    // attainment measures how the loop rides load swings. The
    // adversarial shapes keep their compressed horizons — sustained
    // overload is their point, and their attainment is *expected* low.
    ScenarioConfig diurnal;
    diurnal.kind = ScenarioKind::Diurnal;
    diurnal.seed = 11;
    diurnal.tenants = 96;
    diurnal.devices = 6;
    diurnal.horizon = 40 * kNsPerSec;

    ScenarioConfig bursty;
    bursty.kind = ScenarioKind::Bursty;
    bursty.seed = 22;
    bursty.tenants = 96;
    bursty.devices = 6;
    bursty.horizon = 30 * kNsPerSec;

    ScenarioConfig thrash;
    thrash.kind = ScenarioKind::AdmissionThrash;
    thrash.seed = 33;
    thrash.tenants = 48;
    thrash.devices = 4;

    ScenarioConfig inversion;
    inversion.kind = ScenarioKind::PriorityInversion;
    inversion.seed = 44;
    inversion.tenants = 24;
    inversion.horizon = 20 * kNsPerSec;

    return {diurnal, bursty, thrash, inversion};
}

std::vector<ScenarioConfig>
smokeConfigs()
{
    // Adversarial shapes only, shrunk for the sanitizer job: enough
    // tenants that admission churn, preemption and aged readmission
    // all fire, small enough that ASan finishes in seconds.
    ScenarioConfig thrash;
    thrash.kind = ScenarioKind::AdmissionThrash;
    thrash.seed = 7;
    thrash.tenants = 12;
    thrash.devices = 2;
    thrash.horizon = kNsPerSec / 2;

    ScenarioConfig inversion;
    inversion.kind = ScenarioKind::PriorityInversion;
    inversion.seed = 7;
    inversion.tenants = 9;
    inversion.horizon = kNsPerSec / 2;

    return {thrash, inversion};
}

/** Metric key prefix: "scenario.admission_thrash" etc. */
std::string
metricPrefix(ScenarioKind kind)
{
    std::string key = scenarioKindName(kind);
    for (char &c : key) {
        if (c == '-')
            c = '_';
    }
    return "scenario." + key;
}

void
printResults(const std::vector<ScenarioResult> &results)
{
    stats::Table table("Generated serving scenarios");
    table.setColumns({"scenario", "tenants", "devices", "finished",
                      "failed", "rejected", "makespan (ms)",
                      "mean JCT (ms)", "SLO attain", "wakeups",
                      "fruitless", "idle adv"});
    for (const ScenarioResult &r : results) {
        table.addRow(
            {scenarioKindName(r.cfg.kind),
             stats::Table::cellInt(r.cfg.tenants),
             stats::Table::cellInt(r.rep.deviceCount),
             stats::Table::cellInt(r.rep.finishedCount()),
             stats::Table::cellInt(r.rep.failedCount()),
             stats::Table::cellInt(r.rep.rejectedCount()),
             stats::Table::cell(toMs(r.rep.makespan), 1),
             stats::Table::cell(toMs(r.rep.meanJct()), 1),
             strFormat("%d/%d (%.0f%%)", r.rep.sloMet(),
                       r.rep.sloEligible(),
                       r.rep.sloAttainment() * 100.0),
             stats::Table::cellInt((long long)r.rep.loopWakeups),
             stats::Table::cellInt((long long)r.rep.loopFruitlessPolls),
             stats::Table::cellInt((long long)r.rep.loopIdleAdvances)});
    }
    table.print();
}

void
report()
{
    std::vector<ScenarioResult> results;
    for (const ScenarioConfig &sc : fullConfigs())
        results.push_back(runScenario(sc));

    printResults(results);
    std::printf("ledger audit: clean on all %zu scenarios\n",
                results.size());

    for (const ScenarioResult &r : results) {
        std::string prefix = metricPrefix(r.cfg.kind);
        recordBenchMetric(prefix + ".finished",
                          double(r.rep.finishedCount()));
        recordBenchMetric(prefix + ".slo_attainment",
                          r.rep.sloAttainment());
        recordBenchMetric(prefix + ".wakeups",
                          double(r.rep.loopWakeups));
        recordBenchMetric(prefix + ".fruitless_polls",
                          double(r.rep.loopFruitlessPolls));
        recordServeMetrics(prefix, r.rep);
    }
}

int
smoke()
{
    std::vector<ScenarioResult> results;
    for (const ScenarioConfig &sc : smokeConfigs())
        results.push_back(runScenario(sc));
    printResults(results);
    for (const ScenarioResult &r : results) {
        VDNN_ASSERT(r.rep.finishedCount() + r.rep.failedCount() +
                            r.rep.rejectedCount() ==
                        int(r.rep.jobs.size()),
                    "smoke scenario %s left jobs unresolved",
                    scenarioKindName(r.cfg.kind));
    }
    std::printf("smoke: ledger audit clean on %zu adversarial "
                "scenarios\n",
                results.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "smoke") == 0)
        return smoke();

    registerSim("scenario/diurnal_96t_6dev",
                [] { runScenario(fullConfigs()[0]); });
    registerSim("scenario/admission_thrash_48t_4dev",
                [] { runScenario(fullConfigs()[2]); });
    return benchMain(argc, argv, report);
}
