/**
 * @file
 * Compressing DMA Engine (Rhu et al., 2017) over vDNN offload.
 *
 * vDNN's offload/prefetch traffic saturates PCIe exactly where the
 * paper's Fig. 9 "wasted time" comes from. Post-ReLU activation maps
 * are mostly zero, so a zero-value compressor between the device and
 * the PCIe PHY shrinks the bytes each DMA moves. The
 * CompressedOffloadPlanner expresses this directly in the MemoryPlan
 * IR — the same offload *set* as vDNN_all, with per-buffer dmaScale
 * directives — a configuration a closed policy enum could not
 * name.
 *
 * Claims checked:
 *  - cDMA moves materially fewer PCIe bytes per iteration than
 *    vDNN_all on VGG-16 (the paper reports an average ~2.6x ratio);
 *  - the reduced traffic shortens (never lengthens) the transfer
 *    stall and the iteration.
 */

#include "bench_common.hh"

#include <memory>

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

core::SessionResult
runRaw(const net::Network &network)
{
    return runPlanner(network,
                      std::make_shared<core::OffloadAllPlanner>(
                          core::AlgoPreference::MemoryOptimal));
}

core::SessionResult
runCompressed(const net::Network &network)
{
    return runPlanner(network,
                      std::make_shared<core::CompressedOffloadPlanner>(
                          core::AlgoPreference::MemoryOptimal));
}

void
report()
{
    stats::Table table("vDNN_all vs compressed-DMA offload (Titan X)");
    table.setColumns({"network", "config", "offload set (GiB)",
                      "PCIe traffic (GiB)", "stall (ms)",
                      "iteration (ms)"});

    double vgg_ratio = 0.0;
    TimeNs raw_stall = 0;
    TimeNs cdma_stall = 0;
    TimeNs raw_iter = 0;
    TimeNs cdma_iter = 0;
    for (std::int64_t batch : {64, 128}) {
        auto network = net::buildVgg16(batch);
        auto raw = runRaw(*network);
        auto cdma = runCompressed(*network);
        for (const auto *r : {&raw, &cdma}) {
            table.addRow(
                {network->name(), r->configName,
                 stats::Table::cell(toGiB(r->offloadedBytesPerIter), 2),
                 stats::Table::cell(toGiB(r->pcieBytesPerIter), 2),
                 stats::Table::cell(toMs(r->transferStallTime), 1),
                 stats::Table::cell(toMs(r->iterationTime), 1)});
        }
        if (batch == 128) {
            vgg_ratio = double(raw.pcieBytesPerIter) /
                        double(cdma.pcieBytesPerIter);
            raw_stall = raw.transferStallTime;
            cdma_stall = cdma.transferStallTime;
            raw_iter = raw.iterationTime;
            cdma_iter = cdma.iterationTime;
        }
    }
    table.print();

    stats::Comparison cmp("Compressing DMA Engine over vDNN_all");
    cmp.addNumeric("VGG-16 (128) PCIe traffic reduction (x)", 2.6,
                   vgg_ratio, /*tolerance=*/0.5);
    cmp.addBool("cDMA never increases the transfer stall", true,
                cdma_stall <= raw_stall);
    cmp.addBool("cDMA never lengthens the iteration", true,
                cdma_iter <= raw_iter);
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("compressed_offload/vgg16_128_cdma", [] {
        auto network = net::buildVgg16(128);
        runCompressed(*network);
    });
    return benchMain(argc, argv, report);
}
