#include "stats/comparison.hh"

#include "common/logging.hh"
#include "stats/table.hh"

#include <cmath>
#include <cstdio>

namespace vdnn::stats
{

void
Comparison::addNumeric(const std::string &what, double paper,
                       double measured, double tolerance)
{
    double denom = std::abs(paper) > 1e-12 ? std::abs(paper) : 1.0;
    double rel = std::abs(measured - paper) / denom;
    bool ok = rel <= tolerance;
    ++checked;
    if (!ok)
        ++failures;
    rows.push_back({what, strFormat("%.3g", paper),
                    strFormat("%.3g", measured),
                    ok ? strFormat("holds (%.0f%% off)", rel * 100.0)
                       : strFormat("DEVIATES (%.0f%% off)", rel * 100.0)});
}

void
Comparison::addBool(const std::string &what, bool paper_says, bool measured)
{
    bool ok = paper_says == measured;
    ++checked;
    if (!ok)
        ++failures;
    rows.push_back({what, paper_says ? "yes" : "no",
                    measured ? "yes" : "no", ok ? "holds" : "DEVIATES"});
}

void
Comparison::addInfo(const std::string &what, const std::string &paper,
                    const std::string &measured)
{
    rows.push_back({what, paper, measured, "info"});
}

std::string
Comparison::render() const
{
    Table t("paper vs measured: " + name);
    t.setColumns({"claim", "paper", "measured", "verdict"});
    for (const auto &r : rows)
        t.addRow({r.what, r.paper, r.measured, r.verdict});
    std::string out = t.render();
    out += strFormat("summary: %d/%d checked claims hold\n",
                     checked - failures, checked);
    return out;
}

void
Comparison::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

} // namespace vdnn::stats
