/**
 * @file
 * Fixed-width bucket histogram for latency / size distributions.
 */

#ifndef VDNN_STATS_HISTOGRAM_HH
#define VDNN_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vdnn::stats
{

class Histogram
{
  public:
    /**
     * @param lo lower bound of the first bucket
     * @param hi upper bound of the last bucket (must exceed @p lo)
     * @param buckets number of equal-width buckets (>= 1)
     * Samples outside [lo, hi) land in underflow/overflow counters.
     */
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double v);

    std::uint64_t count() const { return total; }
    std::uint64_t underflow() const { return under; }
    std::uint64_t overflow() const { return over; }
    std::uint64_t bucketCount(std::size_t i) const { return counts.at(i); }
    std::size_t buckets() const { return counts.size(); }
    double bucketLow(std::size_t i) const;
    double bucketHigh(std::size_t i) const;

    /** Value below which @p q of the samples fall (q in [0,1]). */
    double quantile(double q) const;

    /** Multi-line ASCII rendering, for debugging / example output. */
    std::string render(std::size_t width = 40) const;

  private:
    double lo;
    double hi;
    double width;
    std::vector<std::uint64_t> counts;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t total = 0;
};

} // namespace vdnn::stats

#endif // VDNN_STATS_HISTOGRAM_HH
