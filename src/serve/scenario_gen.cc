#include "serve/scenario_gen.hh"

#include "common/logging.hh"
#include "core/planner.hh"
#include "net/builders.hh"

#include <algorithm>
#include <cmath>

namespace vdnn::serve
{

const char *
scenarioKindName(ScenarioKind k)
{
    switch (k) {
      case ScenarioKind::Diurnal:
        return "diurnal";
      case ScenarioKind::Bursty:
        return "bursty";
      case ScenarioKind::AdmissionThrash:
        return "admission-thrash";
      case ScenarioKind::PriorityInversion:
        return "priority-inversion";
    }
    return "?";
}

/**
 * One tenant archetype: a network builder choice, a batch size and a
 * rough isolated-run cost per iteration on the simulated Titan X —
 * the base the SLO deadline scales from. The costs are deliberately
 * coarse (the SLO is an observational target, not a model); what
 * matters is that bigger workloads get proportionally looser
 * deadlines, so attainment measures scheduling quality rather than
 * workload size.
 */
struct ScenarioGenerator::Model
{
    int builder;          ///< 0 = AlexNet, 1 = OverFeat, 2 = VGG-16
    std::int64_t batch;
    TimeNs isolatedIter;  ///< rough per-iteration cost, exclusive GPU
};

namespace
{

// Costs track the fig14 vDNN_all memory-optimal column on the Titan X
// (batch-64 rows scaled from the measured batch-128 ones).
constexpr ScenarioGenerator::Model kAlexNet64{0, 64, 150 * kNsPerMs};
constexpr ScenarioGenerator::Model kAlexNet128{0, 128,
                                               290 * kNsPerMs};
constexpr ScenarioGenerator::Model kOverFeat64{1, 64, 450 * kNsPerMs};
constexpr ScenarioGenerator::Model kOverFeat128{1, 128,
                                                900 * kNsPerMs};
constexpr ScenarioGenerator::Model kVgg64{2, 64, 3100 * kNsPerMs};

/** The bread-and-butter serving mix (small to mid footprints). */
constexpr ScenarioGenerator::Model kServingMix[] = {
    kAlexNet64, kAlexNet128, kOverFeat64, kOverFeat128};

} // namespace

ScenarioGenerator::ScenarioGenerator(ScenarioConfig config)
    : cfg(config), rng(config.seed)
{
    VDNN_ASSERT(cfg.tenants >= 1, "scenario needs at least one tenant");
    VDNN_ASSERT(cfg.devices >= 1, "scenario needs at least one device");
    VDNN_ASSERT(cfg.horizon > 0, "scenario horizon must be positive");
    VDNN_ASSERT(cfg.minIterations >= 1 &&
                    cfg.maxIterations >= cfg.minIterations,
                "bad iteration range [%d, %d]", cfg.minIterations,
                cfg.maxIterations);
    VDNN_ASSERT(cfg.diurnalCycles >= 1, "need >= 1 diurnal cycle");
    VDNN_ASSERT(cfg.diurnalPeakToTrough >= 1.0,
                "peak/trough ratio must be >= 1");
    VDNN_ASSERT(cfg.bursts >= 1, "need >= 1 burst");
    VDNN_ASSERT(cfg.sloSlack > 0.0, "SLO slack must be positive");
}

std::vector<gpu::GpuSpec>
ScenarioGenerator::heterogeneousCluster(int devices)
{
    // The three 12 GB-class presets, round-robin: placement sees
    // different FLOPs/bandwidth per device while every tenant still
    // fits somewhere, so heterogeneity shapes decisions rather than
    // forcing rejections.
    std::vector<gpu::GpuSpec> specs;
    specs.reserve(std::size_t(devices));
    for (int d = 0; d < devices; ++d) {
        switch (d % 3) {
          case 0:
            specs.push_back(gpu::titanXMaxwell());
            break;
          case 1:
            specs.push_back(gpu::titanXPascal());
            break;
          default:
            specs.push_back(gpu::teslaK40());
            break;
        }
    }
    return specs;
}

std::shared_ptr<const net::Network>
ScenarioGenerator::network(const Model &m)
{
    auto key = std::make_pair(m.builder, m.batch);
    auto it = netCache.find(key);
    if (it != netCache.end())
        return it->second;
    std::shared_ptr<const net::Network> net;
    switch (m.builder) {
      case 0:
        net = net::buildAlexNet(m.batch);
        break;
      case 1:
        net = net::buildOverFeat(m.batch);
        break;
      default:
        net = net::buildVgg16(m.batch);
        break;
    }
    netCache.emplace(key, net);
    return net;
}

JobSpec
ScenarioGenerator::makeJob(int index, const Model &m, TimeNs arrival)
{
    JobSpec spec;
    spec.name = strFormat("%s-%03d", scenarioKindName(cfg.kind), index);
    spec.network = network(m);
    spec.planner = std::make_shared<core::OffloadAllPlanner>(
        core::AlgoPreference::MemoryOptimal);
    spec.arrival = arrival;
    spec.iterations =
        int(rng.nextRange(cfg.minIterations, cfg.maxIterations));
    // Deadline: slack x the tenant's isolated-run estimate. Queueing
    // and co-tenant interference must fit inside the slack, which is
    // exactly what attainment is supposed to measure.
    spec.sloJct = TimeNs(cfg.sloSlack *
                         double(m.isolatedIter * spec.iterations));
    return spec;
}

std::vector<TimeNs>
ScenarioGenerator::diurnalArrivals(int count)
{
    // Discretized inverse-CDF sampling of a sinusoidal intensity:
    // slot weights trace `cycles` full trough->peak->trough periods
    // across the horizon, each arrival picks a slot by CDF walk and a
    // uniform offset inside it. O(slots) setup, O(slots) per sample —
    // plenty for a few thousand tenants, and deterministic.
    constexpr int kSlots = 256;
    double weights[kSlots];
    double total = 0.0;
    const double ratio = cfg.diurnalPeakToTrough;
    for (int s = 0; s < kSlots; ++s) {
        double phase = 2.0 * M_PI * cfg.diurnalCycles * (s + 0.5) /
                       kSlots;
        // sin shifted to start at the trough; weight in [1, ratio].
        double lift = 0.5 - 0.5 * std::cos(phase);
        weights[s] = 1.0 + (ratio - 1.0) * lift;
        total += weights[s];
    }
    TimeNs slotLen = cfg.horizon / kSlots;
    std::vector<TimeNs> arrivals;
    arrivals.reserve(std::size_t(count));
    for (int i = 0; i < count; ++i) {
        double u = rng.nextDouble() * total;
        int s = 0;
        while (s < kSlots - 1 && u >= weights[s]) {
            u -= weights[s];
            ++s;
        }
        TimeNs base = slotLen * s;
        arrivals.push_back(
            base + TimeNs(rng.nextDouble() * double(slotLen)));
    }
    std::sort(arrivals.begin(), arrivals.end());
    return arrivals;
}

std::vector<TimeNs>
ScenarioGenerator::burstyArrivals(int count)
{
    // Burst centers spread across the horizon (jittered, sorted);
    // every tenant joins a burst with a one-sided geometric-ish
    // offset, so each burst slams the admission queue near-instantly
    // and the gaps between bursts drain the cluster to idle.
    std::vector<TimeNs> centers;
    centers.reserve(std::size_t(cfg.bursts));
    TimeNs stride = cfg.horizon / cfg.bursts;
    for (int b = 0; b < cfg.bursts; ++b) {
        TimeNs base = stride * b;
        centers.push_back(
            base + TimeNs(rng.nextDouble() * double(stride) * 0.5));
    }
    std::vector<TimeNs> arrivals;
    arrivals.reserve(std::size_t(count));
    for (int i = 0; i < count; ++i) {
        TimeNs center =
            centers[std::size_t(rng.nextRange(0, cfg.bursts - 1))];
        // Exponential-shaped offset via inverse transform, clamped to
        // a few spreads so a straggler cannot leak into the next gap.
        double u = rng.nextDouble();
        double gap = -std::log(1.0 - u * 0.98);
        arrivals.push_back(center +
                           TimeNs(gap * double(cfg.burstSpread)));
    }
    std::sort(arrivals.begin(), arrivals.end());
    return arrivals;
}

GeneratedScenario
ScenarioGenerator::generate()
{
    GeneratedScenario out;
    switch (cfg.kind) {
      case ScenarioKind::Diurnal: {
        out.policy = SchedPolicy::RoundRobin;
        out.devices = heterogeneousCluster(cfg.devices);
        std::vector<TimeNs> when = diurnalArrivals(cfg.tenants);
        for (int i = 0; i < cfg.tenants; ++i) {
            const Model &m =
                kServingMix[std::size_t(rng.nextRange(0, 3))];
            out.jobs.push_back(makeJob(i, m, when[std::size_t(i)]));
        }
        break;
      }
      case ScenarioKind::Bursty: {
        out.policy = SchedPolicy::RoundRobin;
        out.devices = heterogeneousCluster(cfg.devices);
        std::vector<TimeNs> when = burstyArrivals(cfg.tenants);
        for (int i = 0; i < cfg.tenants; ++i) {
            const Model &m =
                kServingMix[std::size_t(rng.nextRange(0, 3))];
            out.jobs.push_back(makeJob(i, m, when[std::size_t(i)]));
        }
        break;
      }
      case ScenarioKind::AdmissionThrash: {
        // Every third tenant is a near-device-sized VGG-16 under the
        // *baseline* planner (whole network resident — the admission
        // ledger's worst customer); the rest are small backfillers.
        // Arrivals compress into the first fifth of the horizon so
        // the queue is deep from the start and admission re-decides
        // on every completion, eviction and rebalance.
        out.policy = SchedPolicy::RoundRobin;
        out.devices = heterogeneousCluster(cfg.devices);
        TimeNs window = std::max<TimeNs>(cfg.horizon / 5, 1);
        for (int i = 0; i < cfg.tenants; ++i) {
            TimeNs arrival =
                TimeNs(rng.nextDouble() * double(window));
            bool heavy = i % 3 == 0;
            const Model &m = heavy ? kVgg64 : kAlexNet64;
            JobSpec spec = makeJob(i, m, arrival);
            if (heavy) {
                spec.planner =
                    std::make_shared<core::BaselinePlanner>(
                        core::AlgoPreference::MemoryOptimal);
                // Keep the ledger churning: heavies come and go
                // instead of squatting.
                spec.iterations = cfg.minIterations;
                spec.sloJct = TimeNs(cfg.sloSlack *
                                     double(m.isolatedIter *
                                            spec.iterations));
            }
            out.jobs.push_back(std::move(spec));
        }
        std::sort(out.jobs.begin(), out.jobs.end(),
                  [](const JobSpec &a, const JobSpec &b) {
                      return a.arrival < b.arrival;
                  });
        break;
      }
      case ScenarioKind::PriorityInversion: {
        // Single device, PreemptivePriority: a resident field of
        // low-priority long jobs, then a hostile stream of
        // high-priority arrivals. The low jobs carry aging, so the
        // inversion must resolve instead of starving them forever.
        out.policy = SchedPolicy::PreemptivePriority;
        out.devices = {gpu::titanXMaxwell()};
        int lowJobs = std::max(1, cfg.tenants / 3);
        TimeNs window = std::max<TimeNs>(cfg.horizon / 4, 1);
        for (int i = 0; i < cfg.tenants; ++i) {
            bool low = i < lowJobs;
            const Model &m = low ? kOverFeat128 : kAlexNet64;
            TimeNs arrival =
                low ? TimeNs(rng.nextDouble() * double(window) * 0.1)
                    : window / 8 +
                          TimeNs(rng.nextDouble() * double(window));
            JobSpec spec = makeJob(i, m, arrival);
            spec.priority = low ? 0 : 10;
            if (low) {
                spec.agingRatePerSec = 2.0;
                spec.iterations = cfg.maxIterations;
                // Preemption and aged readmission are the point; the
                // deadline must tolerate one full park/resume cycle.
                spec.sloJct = TimeNs(3.0 * cfg.sloSlack *
                                     double(m.isolatedIter *
                                            spec.iterations));
            }
            out.jobs.push_back(std::move(spec));
        }
        std::sort(out.jobs.begin(), out.jobs.end(),
                  [](const JobSpec &a, const JobSpec &b) {
                      return a.arrival < b.arrival;
                  });
        break;
      }
    }
    return out;
}

} // namespace vdnn::serve
