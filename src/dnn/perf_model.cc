#include "dnn/perf_model.hh"

#include "common/logging.hh"
#include "common/units.hh"

#include <algorithm>
#include <cmath>

namespace vdnn::dnn
{

PerfModel::PerfModel(gpu::GpuSpec spec) : gpuSpec(std::move(spec))
{
    VDNN_ASSERT(gpuSpec.peakFlops > 0 && gpuSpec.dramBandwidth > 0,
                "invalid GPU spec");
}

Flops
PerfModel::convFlops(const LayerSpec &layer)
{
    VDNN_ASSERT(layer.kind == LayerKind::Conv, "not a conv layer");
    const ConvParams &p = layer.conv;
    // 2 * N * K * C * R * S * outH * outW multiply-accumulates.
    return 2.0 * double(layer.out.n) * double(p.outChannels) *
           double(layer.in.c) * double(p.kernelH) * double(p.kernelW) *
           double(layer.out.h) * double(layer.out.w);
}

OpCost
PerfModel::roofline(Flops flops, double flop_eff, Bytes bytes,
                    double mem_eff) const
{
    double compute_s =
        flops > 0 ? flops / (flop_eff * gpuSpec.peakFlops) : 0.0;
    double memory_s =
        bytes > 0 ? double(bytes) / (mem_eff * gpuSpec.dramBandwidth)
                  : 0.0;
    double s = std::max(compute_s, memory_s);
    OpCost cost;
    cost.time = std::max<TimeNs>(secondsToNs(s), 1000); // >= 1 us launch
    cost.flops = flops;
    cost.dramBytes = bytes;
    return cost;
}

namespace
{

/** Extra DRAM traffic multiplier per algorithm (transform/im2col passes
 *  re-write and re-read intermediate forms of the operands). */
double
algoTrafficFactor(ConvAlgo algo)
{
    switch (algo) {
      case ConvAlgo::ImplicitGemm:
        return 1.2;
      case ConvAlgo::ImplicitPrecompGemm:
        return 1.2;
      case ConvAlgo::Gemm:
        return 2.5;
      case ConvAlgo::Direct:
        return 1.5;
      case ConvAlgo::Fft:
        return 2.5;
      case ConvAlgo::FftTiling:
        return 2.2;
      case ConvAlgo::Winograd:
        return 1.8;
    }
    return 1.0;
}

} // namespace

OpCost
PerfModel::convOp(const LayerSpec &layer, ConvAlgo algo,
                  double eff_scale) const
{
    VDNN_ASSERT(convAlgoApplicable(algo, layer),
                "algorithm %s not applicable to %s", convAlgoName(algo),
                layer.name.c_str());
    double eff = convAlgoEfficiency(algo, layer) * eff_scale;
    Bytes operand_bytes =
        layer.in.bytes() + layer.out.bytes() + layer.weightBytes();
    Bytes traffic = Bytes(double(operand_bytes) * algoTrafficFactor(algo));
    return roofline(convFlops(layer), eff, traffic, 0.80);
}

OpCost
PerfModel::convForward(const LayerSpec &layer, ConvAlgo algo) const
{
    return convOp(layer, algo, 1.0);
}

OpCost
PerfModel::convBackwardData(const LayerSpec &layer, ConvAlgo algo) const
{
    // Same MAC count as forward (full convolution of dY with rotated W).
    return convOp(layer, algo, kBackwardDerate);
}

OpCost
PerfModel::convBackwardFilter(const LayerSpec &layer, ConvAlgo algo) const
{
    // Same MAC count as forward (cross-correlation of X with dY).
    return convOp(layer, algo, kBackwardDerate);
}

OpCost
PerfModel::forward(const LayerSpec &layer) const
{
    const Bytes x = layer.in.bytes();
    const Bytes y = layer.out.bytes();
    const double n_elems = double(layer.out.elements());

    switch (layer.kind) {
      case LayerKind::Conv:
        panic("convForward() must be used for CONV layers");
      case LayerKind::Fc: {
        Flops flops = 2.0 * double(layer.in.n) *
                      double(layer.in.elementsPerImage()) *
                      double(layer.fc.outFeatures);
        Bytes bytes = x + y + layer.weightBytes();
        return roofline(flops, kFcEfficiency, bytes, 0.80);
      }
      case LayerKind::Activation:
        // In-place elementwise: read + write of the same buffer.
        return roofline(n_elems, 0.05, x + y, kMemEfficiency);
      case LayerKind::Pool:
        return roofline(n_elems * layer.pool.windowH * layer.pool.windowW,
                        0.05, x + y, kMemEfficiency);
      case LayerKind::Lrn:
        // Cross-channel window: ~2.5 passes over the input.
        return roofline(n_elems * layer.lrn.localSize, 0.05,
                        Bytes(2.5 * double(x)), kMemEfficiency);
      case LayerKind::Dropout:
        // Elementwise mask apply + mask write (1 byte/elem).
        return roofline(n_elems, 0.05,
                        x + y + Bytes(n_elems), kMemEfficiency);
      case LayerKind::Concat:
        // Gather copies into the joined buffer.
        return roofline(0.0, 1.0, 2 * y, kMemEfficiency);
      case LayerKind::SoftmaxLoss:
        return roofline(3.0 * n_elems, 0.05, 3 * x, kMemEfficiency);
    }
    panic("unknown layer kind %d", int(layer.kind));
}

OpCost
PerfModel::backward(const LayerSpec &layer) const
{
    const Bytes x = layer.in.bytes();
    const Bytes y = layer.out.bytes();
    const double n_elems = double(layer.out.elements());

    switch (layer.kind) {
      case LayerKind::Conv:
        panic("convBackward*() must be used for CONV layers");
      case LayerKind::Fc: {
        // Two GEMMs: dX = dY * W^T and dW = X^T * dY.
        Flops flops = 4.0 * double(layer.in.n) *
                      double(layer.in.elementsPerImage()) *
                      double(layer.fc.outFeatures);
        Bytes bytes = x + 2 * y + 2 * layer.weightBytes();
        return roofline(flops, kFcEfficiency, bytes, 0.80);
      }
      case LayerKind::Activation:
        // dX = f'(Y) . dY, in place on the gradient buffer.
        return roofline(n_elems, 0.05, 3 * y, kMemEfficiency);
      case LayerKind::Pool:
        // Reads X, Y, dY; writes dX.
        return roofline(n_elems * layer.pool.windowH * layer.pool.windowW,
                        0.05, 2 * x + 2 * y, kMemEfficiency);
      case LayerKind::Lrn:
        return roofline(n_elems * layer.lrn.localSize * 2.0, 0.05,
                        Bytes(4.0 * double(x)), kMemEfficiency);
      case LayerKind::Dropout:
        return roofline(n_elems, 0.05, 2 * y + Bytes(n_elems),
                        kMemEfficiency);
      case LayerKind::Concat:
        // Scatter dY back into per-producer slices.
        return roofline(0.0, 1.0, 2 * y, kMemEfficiency);
      case LayerKind::SoftmaxLoss:
        return roofline(2.0 * n_elems, 0.05, 3 * x, kMemEfficiency);
    }
    panic("unknown layer kind %d", int(layer.kind));
}

} // namespace vdnn::dnn
