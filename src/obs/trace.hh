/**
 * @file
 * Chrome trace-event recorder.
 *
 * A low-overhead structured event sink. Producers (Device engines, the
 * PCIe arbiter, the executor, the scheduler) call complete()/instant()/
 * flowStart()/flowEnd() at their existing choke points; the recorder
 * buffers the events in memory and serialises them on demand as Chrome
 * trace-event JSON, loadable in chrome://tracing or Perfetto.
 *
 * Convention: pid = device id (one process track per device), tid =
 * tenant/client id (one thread lane per tenant). Simulated nanoseconds
 * map onto the trace's microsecond timestamps as ns / 1000.0.
 *
 * Recording methods early-return when the recorder is disabled, so an
 * always-compiled call site costs a single predictable branch.
 */

#ifndef VDNN_OBS_TRACE_HH
#define VDNN_OBS_TRACE_HH

#include "common/types.hh"

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace vdnn::obs
{

/** One buffered trace event (phase follows the Chrome trace format). */
struct TraceEvent
{
    /** 'X' complete, 'i' instant, 's' flow start, 'f' flow finish. */
    char phase = 'i';
    /** Category string; must outlive the recorder (use literals). */
    const char *cat = "";
    std::string name;
    TimeNs ts = 0;
    TimeNs dur = 0; ///< only meaningful for 'X'
    int pid = 0;
    int tid = 0;
    std::uint64_t flowId = 0; ///< only meaningful for 's'/'f'
    /** Pre-rendered JSON object body for "args" ("" = omitted). */
    std::string args;
};

class TraceRecorder
{
  public:
    explicit TraceRecorder(bool enabled = true) : on(enabled) {}

    bool enabled() const { return on; }
    void setEnabled(bool e) { on = e; }

    /** A span [start, end) on device @p pid, tenant lane @p tid. */
    void complete(int pid, int tid, const char *cat, std::string name,
                  TimeNs start, TimeNs end, std::string args = "");

    /** A zero-duration marker. */
    void instant(int pid, int tid, const char *cat, std::string name,
                 TimeNs ts, std::string args = "");

    /**
     * Open a flow arrow (e.g. preemption: victim -> beneficiary).
     * @return the flow id to pass to flowEnd(); 0 when disabled.
     */
    std::uint64_t flowStart(int pid, int tid, const char *cat,
                            std::string name, TimeNs ts);

    /** Close a flow arrow opened by flowStart(). No-op for id 0. */
    void flowEnd(std::uint64_t id, int pid, int tid, const char *cat,
                 std::string name, TimeNs ts);

    /** Label a device track ("M" process_name metadata on export). */
    void setProcessName(int pid, std::string name);

    /** Label a tenant lane ("M" thread_name metadata on export). */
    void setThreadName(int pid, int tid, std::string name);

    std::size_t eventCount() const { return buf.size(); }
    const std::vector<TraceEvent> &events() const { return buf; }
    void clear();

    /** Serialise as {"traceEvents": [...]} (metadata events first). */
    void writeJson(std::ostream &os) const;
    /** writeJson() to @p path; @return false on I/O failure. */
    bool writeJsonFile(const std::string &path) const;

  private:
    bool on;
    std::uint64_t nextFlowId = 1;
    std::vector<TraceEvent> buf;
    std::map<int, std::string> processNames;
    std::map<std::pair<int, int>, std::string> threadNames;
};

} // namespace vdnn::obs

#endif // VDNN_OBS_TRACE_HH
