/**
 * @file
 * Tests for serve::ScenarioGenerator: seeded determinism, arrival
 * ordering/bounds, the per-kind structural properties (adversarial
 * shapes really are adversarial), SLO deadline wiring, and a small
 * end-to-end run whose ledger must audit clean.
 */

#include "serve/scenario_gen.hh"

#include "check/ledger_auditor.hh"
#include "common/units.hh"
#include "serve/scheduler.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace vdnn;
using namespace vdnn::serve;

namespace
{

ScenarioConfig
smallConfig(ScenarioKind kind)
{
    ScenarioConfig cfg;
    cfg.kind = kind;
    cfg.seed = 42;
    cfg.tenants = 12;
    cfg.devices = 2;
    cfg.horizon = kNsPerSec;
    return cfg;
}

bool
arrivalsSorted(const GeneratedScenario &sc)
{
    return std::is_sorted(sc.jobs.begin(), sc.jobs.end(),
                          [](const JobSpec &a, const JobSpec &b) {
                              return a.arrival < b.arrival;
                          });
}

} // namespace

TEST(ScenarioGen, DeterministicPerSeed)
{
    for (ScenarioKind kind :
         {ScenarioKind::Diurnal, ScenarioKind::Bursty,
          ScenarioKind::AdmissionThrash,
          ScenarioKind::PriorityInversion}) {
        GeneratedScenario a =
            ScenarioGenerator(smallConfig(kind)).generate();
        GeneratedScenario b =
            ScenarioGenerator(smallConfig(kind)).generate();
        ASSERT_EQ(a.jobs.size(), b.jobs.size());
        for (std::size_t i = 0; i < a.jobs.size(); ++i) {
            EXPECT_EQ(a.jobs[i].name, b.jobs[i].name);
            EXPECT_EQ(a.jobs[i].arrival, b.jobs[i].arrival);
            EXPECT_EQ(a.jobs[i].iterations, b.jobs[i].iterations);
            EXPECT_EQ(a.jobs[i].priority, b.jobs[i].priority);
            EXPECT_EQ(a.jobs[i].sloJct, b.jobs[i].sloJct);
        }
        EXPECT_EQ(a.policy, b.policy);
        EXPECT_EQ(a.devices.size(), b.devices.size());
    }
}

TEST(ScenarioGen, SeedChangesTheWorkload)
{
    ScenarioConfig cfg = smallConfig(ScenarioKind::Diurnal);
    GeneratedScenario a = ScenarioGenerator(cfg).generate();
    cfg.seed = 43;
    GeneratedScenario b = ScenarioGenerator(cfg).generate();
    bool differs = false;
    for (std::size_t i = 0; i < a.jobs.size(); ++i)
        differs |= a.jobs[i].arrival != b.jobs[i].arrival;
    EXPECT_TRUE(differs);
}

TEST(ScenarioGen, ArrivalsSortedAndInWindow)
{
    GeneratedScenario diurnal =
        ScenarioGenerator(smallConfig(ScenarioKind::Diurnal))
            .generate();
    EXPECT_TRUE(arrivalsSorted(diurnal));
    for (const JobSpec &j : diurnal.jobs) {
        EXPECT_GE(j.arrival, 0);
        EXPECT_LT(j.arrival, kNsPerSec);
    }

    // Bursty offsets are one-sided past each burst center, so the
    // tail can overrun the horizon a little — but only by the
    // (clamped) exponential spread, never unboundedly.
    ScenarioConfig bc = smallConfig(ScenarioKind::Bursty);
    GeneratedScenario bursty = ScenarioGenerator(bc).generate();
    EXPECT_TRUE(arrivalsSorted(bursty));
    for (const JobSpec &j : bursty.jobs) {
        EXPECT_GE(j.arrival, 0);
        EXPECT_LT(j.arrival, bc.horizon + 8 * bc.burstSpread);
    }
}

TEST(ScenarioGen, EveryJobCarriesAnSlo)
{
    for (ScenarioKind kind :
         {ScenarioKind::Diurnal, ScenarioKind::Bursty,
          ScenarioKind::AdmissionThrash,
          ScenarioKind::PriorityInversion}) {
        GeneratedScenario sc =
            ScenarioGenerator(smallConfig(kind)).generate();
        for (const JobSpec &j : sc.jobs) {
            EXPECT_GT(j.sloJct, 0) << j.name;
            EXPECT_GE(j.iterations, 1) << j.name;
            EXPECT_NE(j.network, nullptr) << j.name;
            EXPECT_NE(j.planner, nullptr) << j.name;
        }
    }
}

TEST(ScenarioGen, HeterogeneousClusterCyclesThePresets)
{
    std::vector<gpu::GpuSpec> specs =
        ScenarioGenerator::heterogeneousCluster(7);
    ASSERT_EQ(specs.size(), 7u);
    std::set<std::string> names;
    for (int d = 0; d < 3; ++d)
        names.insert(specs[std::size_t(d)].name);
    EXPECT_EQ(names.size(), 3u); // three distinct GPU models
    EXPECT_EQ(specs[0].name, specs[3].name);
    EXPECT_EQ(specs[1].name, specs[4].name);
    EXPECT_EQ(specs[2].name, specs[5].name);
    EXPECT_EQ(specs[0].name, specs[6].name);
}

TEST(ScenarioGen, PriorityInversionShape)
{
    GeneratedScenario sc =
        ScenarioGenerator(smallConfig(ScenarioKind::PriorityInversion))
            .generate();
    EXPECT_EQ(sc.policy, SchedPolicy::PreemptivePriority);
    ASSERT_EQ(sc.devices.size(), 1u); // single device by construction
    int low = 0, high = 0;
    for (const JobSpec &j : sc.jobs) {
        if (j.priority == 0) {
            ++low;
            // Low-priority victims must carry aging, or the hostile
            // stream starves them forever.
            EXPECT_GT(j.agingRatePerSec, 0.0) << j.name;
        } else {
            EXPECT_EQ(j.priority, 10) << j.name;
            ++high;
        }
    }
    EXPECT_GT(low, 0);
    EXPECT_GT(high, low); // the hostile stream outnumbers the victims
}

TEST(ScenarioGen, AdmissionThrashMixesHeavyAndLightTenants)
{
    ScenarioConfig cfg = smallConfig(ScenarioKind::AdmissionThrash);
    GeneratedScenario sc = ScenarioGenerator(cfg).generate();
    EXPECT_TRUE(arrivalsSorted(sc));
    // Footprints must actually differ: the heavy third uses a
    // different (bigger) network than the backfillers.
    std::set<const net::Network *> nets;
    for (const JobSpec &j : sc.jobs)
        nets.insert(j.network.get());
    EXPECT_GE(nets.size(), 2u);
    // Arrivals compress into the head of the horizon.
    for (const JobSpec &j : sc.jobs)
        EXPECT_LE(j.arrival, cfg.horizon / 5);
}

TEST(ScenarioGen, SmallDiurnalRunsCleanEndToEnd)
{
    ScenarioConfig cfg = smallConfig(ScenarioKind::Diurnal);
    cfg.tenants = 6;
    GeneratedScenario sc = ScenarioGenerator(cfg).generate();

    SchedulerConfig sched_cfg;
    sched_cfg.policy = sc.policy;
    sched_cfg.devices = sc.devices;
    Scheduler sched(sched_cfg);
    for (JobSpec &spec : sc.jobs)
        sched.submit(std::move(spec));
    ServeReport rep = sched.run();

    EXPECT_EQ(rep.finishedCount() + rep.failedCount() +
                  rep.rejectedCount(),
              int(rep.jobs.size()));
    EXPECT_EQ(rep.sloEligible(), int(rep.jobs.size()));
    EXPECT_GE(rep.sloAttainment(), 0.0);
    EXPECT_LE(rep.sloAttainment(), 1.0);
    check::CheckResult audit = check::auditLedger(rep);
    EXPECT_TRUE(audit.ok()) << audit.report();
}
