#include "net/network_stats.hh"

#include "common/logging.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace vdnn::net
{

using dnn::ConvAlgo;
using dnn::LayerKind;

AlgoAssignment
memoryOptimalAlgos(const Network &net)
{
    return AlgoAssignment(net.numLayers(), dnn::kMemoryOptimalAlgo);
}

AlgoAssignment
performanceOptimalAlgos(const Network &net, const dnn::CudnnSim &cudnn)
{
    AlgoAssignment algos(net.numLayers(), dnn::kMemoryOptimalAlgo);
    for (LayerId id : net.topoOrder()) {
        const auto &spec = net.node(id).spec;
        if (spec.kind == LayerKind::Conv)
            algos[std::size_t(id)] = cudnn.fastestAlgo(spec);
    }
    return algos;
}

NetworkStats::NetworkStats(const Network &net_, const dnn::CudnnSim &cudnn_)
    : net(net_), cudnn(cudnn_)
{
    VDNN_ASSERT(net.finalized(), "network must be finalized");
}

Bytes
NetworkStats::layerWorkspace(LayerId id, const AlgoAssignment &algos) const
{
    const auto &spec = net.node(id).spec;
    if (spec.kind != LayerKind::Conv)
        return 0;
    VDNN_ASSERT(algos.size() == net.numLayers(),
                "algo assignment size mismatch");
    return dnn::convWorkspaceBytes(algos[std::size_t(id)], spec);
}

Bytes
NetworkStats::maxWorkspaceBytes(const AlgoAssignment &algos,
                                bool managed_only) const
{
    Bytes max_ws = 0;
    for (LayerId id : net.topoOrder()) {
        if (managed_only && net.node(id).classifier)
            continue;
        max_ws = std::max(max_ws, layerWorkspace(id, algos));
    }
    return max_ws;
}

Bytes
NetworkStats::peakGradientBytes(bool managed_only) const
{
    return peakGradientBytesScoped(managed_only ? GradScope::Managed
                                                : GradScope::All);
}

Bytes
NetworkStats::peakGradientBytesScoped(GradScope scope) const
{
    // Replay backward propagation in reverse topological order with
    // on-demand gradient buffers: g(b) is allocated by the last consumer
    // of buffer b (which writes its dX into it) and freed once b's
    // producer has consumed it as its dY. The input buffer never gets a
    // gradient: frameworks skip dX of the first layer.
    std::unordered_map<BufferId, Bytes> live; // gradient buffers
    Bytes current = 0;
    Bytes peak = 0;

    auto counted = [&](BufferId b) {
        switch (scope) {
          case GradScope::All:
            return true;
          case GradScope::Managed:
            return !net.buffer(b).classifier;
          case GradScope::Classifier:
            return net.buffer(b).classifier;
        }
        return true;
    };
    auto allocGrad = [&](BufferId b) {
        if (b == net.inputBuffer())
            return; // no input gradient
        if (live.count(b))
            return;
        Bytes sz = net.buffer(b).bytes();
        live.emplace(b, sz);
        if (counted(b)) {
            current += sz;
            peak = std::max(peak, current);
        }
    };
    auto freeGrad = [&](BufferId b) {
        auto it = live.find(b);
        if (it == live.end())
            return;
        if (counted(b))
            current -= it->second;
        live.erase(it);
    };

    const auto &order = net.topoOrder();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        LayerId id = *it;
        const LayerNode &n = net.node(id);
        // The layer consumes its dY (gradient of its output buffer) and
        // produces dX into the gradient of each input buffer.
        allocGrad(n.yBuffer);
        for (LayerId in_id : n.inputs) {
            BufferId xb = in_id == kInputLayer
                              ? net.inputBuffer()
                              : net.node(in_id).yBuffer;
            allocGrad(xb);
        }
        peak = std::max(peak, current);
        // Once the producer of a buffer has run its backward pass, the
        // buffer's gradient has been fully consumed.
        if (net.buffer(n.yBuffer).producer == id)
            freeGrad(n.yBuffer);
    }
    return peak;
}

MemoryBreakdown
NetworkStats::baselineBreakdown(const AlgoAssignment &algos) const
{
    MemoryBreakdown b;
    // W persistently, plus a single shared max-size dW buffer: weight
    // gradients are applied in place per layer during backward (part of
    // the improved baseline discipline of Section IV-A, [38, 39]).
    Bytes max_dw = 0;
    for (LayerId id : net.topoOrder()) {
        Bytes w = net.node(id).spec.weightBytes();
        b.weights += w;
        max_dw = std::max(max_dw, w);
    }
    b.weights += max_dw;
    for (BufferId i = 0; i < BufferId(net.numBuffers()); ++i)
        b.featureMaps += net.buffer(i).bytes();
    b.gradientMaps = peakGradientBytes(false);
    b.workspace = maxWorkspaceBytes(algos, false);
    return b;
}

Bytes
NetworkStats::classifierBytes() const
{
    Bytes total = 0;
    Bytes max_dw = 0;
    for (LayerId id : net.topoOrder()) {
        if (net.node(id).classifier) {
            Bytes w = net.node(id).spec.weightBytes();
            total += w;
            max_dw = std::max(max_dw, w);
        }
    }
    total += max_dw;
    for (BufferId i = 0; i < BufferId(net.numBuffers()); ++i) {
        if (net.buffer(i).classifier)
            total += net.buffer(i).bytes();
    }
    // Classifier gradient maps: difference between full and managed
    // gradient peaks approximates the classifier-resident share.
    total += peakGradientBytes(false) - peakGradientBytes(true);
    return total;
}

MemoryBreakdown
NetworkStats::managedBreakdown(const AlgoAssignment &algos) const
{
    MemoryBreakdown b;
    Bytes max_dw = 0;
    for (LayerId id : net.topoOrder()) {
        if (!net.node(id).classifier) {
            Bytes w = net.node(id).spec.weightBytes();
            b.weights += w;
            max_dw = std::max(max_dw, w);
        }
    }
    b.weights += max_dw;
    for (BufferId i = 0; i < BufferId(net.numBuffers()); ++i) {
        if (!net.buffer(i).classifier)
            b.featureMaps += net.buffer(i).bytes();
    }
    b.gradientMaps = peakGradientBytes(true);
    b.workspace = maxWorkspaceBytes(algos, true);
    return b;
}

std::vector<LayerMemoryRow>
NetworkStats::perLayerForward(const AlgoAssignment &algos) const
{
    std::vector<LayerMemoryRow> rows;
    for (LayerId id : net.topoOrder()) {
        const LayerNode &n = net.node(id);
        if (n.spec.kind != LayerKind::Conv &&
            n.spec.kind != LayerKind::Fc) {
            continue;
        }
        LayerMemoryRow row;
        row.id = id;
        row.name = n.spec.name;
        row.kind = n.spec.kind;
        row.x = n.spec.in.bytes();
        row.y = n.spec.inPlace() ? 0 : n.spec.out.bytes();
        row.workspace = layerWorkspace(id, algos);
        row.weights = n.spec.weightBytes();
        rows.push_back(std::move(row));
    }
    return rows;
}

Bytes
NetworkStats::maxLayerWiseUsage(const AlgoAssignment &algos) const
{
    Bytes max_usage = 0;
    for (LayerId id : net.topoOrder()) {
        const LayerNode &n = net.node(id);
        const auto &spec = n.spec;
        Bytes x = spec.in.bytes();
        Bytes y = spec.inPlace() ? 0 : spec.out.bytes();
        Bytes w = spec.weightBytes();
        Bytes ws = layerWorkspace(id, algos);

        // Forward: X + Y + W + WS.
        Bytes fwd = x + y + w + ws;

        // Backward: dY + dX (+ X and/or Y as the kind requires)
        // + W + dW + WS.
        Bytes bwd = spec.out.bytes() + spec.in.bytes() + 2 * w + ws;
        if (spec.backwardNeedsX())
            bwd += x;
        if (spec.backwardNeedsY())
            bwd += spec.out.bytes();

        max_usage = std::max({max_usage, fwd, bwd});
    }
    return max_usage;
}

} // namespace vdnn::net
