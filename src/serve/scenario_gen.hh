/**
 * @file
 * ScenarioGenerator: seeded serving workloads that stress the
 * cluster scheduler at scale.
 *
 * The figure benches replay the paper's fixed workloads; this
 * generator produces the *serving* traffic the ROADMAP north-star
 * cares about — hundreds of tenants over heterogeneous multi-GPU
 * nodes — in four shapes:
 *
 *  - Diurnal: arrival intensity follows a sinusoidal day-cycle
 *    (trough -> peak -> trough), the classic production pattern a
 *    serving cluster must ride without idle-burning the trough or
 *    queue-collapsing the peak.
 *  - Bursty: arrivals clump into tight bursts separated by silence —
 *    the admission queue goes from empty to deep in microseconds,
 *    exercising backfill and the idle fast path between bursts.
 *  - AdmissionThrash (adversarial): alternating near-device-sized and
 *    small tenants on a compressed timeline, so admission constantly
 *    re-decides, backfills around blocked heads and rebalances —
 *    worst case for any serve loop that rescans per event.
 *  - PriorityInversion (adversarial): a field of low-priority
 *    long-running tenants, then a hostile stream of high-priority
 *    arrivals that preempt them; the low jobs carry aging so the
 *    inversion must eventually resolve (single device,
 *    PreemptivePriority).
 *
 * Every job carries a JCT SLO derived from its isolated-run cost, so
 * ServeReport::sloAttainment() turns a generated run into one
 * headline quality number. Generation is deterministic per seed
 * (SplitMix64 — no global RNG state), so bench_scenario runs are
 * reproducible and CI can pin them.
 */

#ifndef VDNN_SERVE_SCENARIO_GEN_HH
#define VDNN_SERVE_SCENARIO_GEN_HH

#include "common/random.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "gpu/gpu_spec.hh"
#include "net/network.hh"
#include "serve/job.hh"
#include "serve/scheduler.hh"

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

namespace vdnn::serve
{

enum class ScenarioKind : std::uint8_t
{
    Diurnal,
    Bursty,
    AdmissionThrash,
    PriorityInversion,
};

const char *scenarioKindName(ScenarioKind k);

struct ScenarioConfig
{
    ScenarioKind kind = ScenarioKind::Diurnal;
    std::uint64_t seed = 1;
    int tenants = 64;
    /** Devices of the (heterogeneous) cluster. PriorityInversion is
     *  single-device by construction and ignores this. */
    int devices = 4;
    /** Arrival window [0, horizon). */
    TimeNs horizon = 2 * kNsPerSec;
    /** Iteration budget range (inclusive), sampled per tenant. */
    int minIterations = 2;
    int maxIterations = 6;
    /** Diurnal: full day-cycles across the horizon, and the peak
     *  arrival intensity as a multiple of the trough's. */
    int diurnalCycles = 2;
    double diurnalPeakToTrough = 8.0;
    /** Bursty: number of bursts and the intra-burst arrival spread. */
    int bursts = 6;
    TimeNs burstSpread = 2 * kNsPerMs;
    /** SLO slack: deadline = slack x isolated-run cost estimate. */
    double sloSlack = 6.0;
};

/** A generated workload plus the cluster/policy it is aimed at. */
struct GeneratedScenario
{
    std::vector<JobSpec> jobs; ///< arrival-sorted
    /** Per-device specs of the target cluster (heterogeneous mix;
     *  exactly one entry for PriorityInversion). */
    std::vector<gpu::GpuSpec> devices;
    SchedPolicy policy = SchedPolicy::RoundRobin;
};

class ScenarioGenerator
{
  public:
    explicit ScenarioGenerator(ScenarioConfig config);

    /** Build the full scenario (deterministic per config+seed). */
    GeneratedScenario generate();

    /** Round-robin mix of the three 12 GB-class GpuSpec presets —
     *  the heterogeneous node the placement policies see. */
    static std::vector<gpu::GpuSpec> heterogeneousCluster(int devices);

    /** One (network builder, batch) tenant archetype; public so the
     *  .cc can define its archetype table at namespace scope. */
    struct Model;

  private:

    std::vector<TimeNs> diurnalArrivals(int count);
    std::vector<TimeNs> burstyArrivals(int count);
    JobSpec makeJob(int index, const Model &m, TimeNs arrival);
    std::shared_ptr<const net::Network> network(const Model &m);

    ScenarioConfig cfg;
    SplitMix64 rng;
    /** Networks shared across tenants of the same (model, batch). */
    std::map<std::pair<int, std::int64_t>,
             std::shared_ptr<const net::Network>>
        netCache;
};

} // namespace vdnn::serve

#endif // VDNN_SERVE_SCENARIO_GEN_HH
