/**
 * @file
 * Layer descriptors and shape inference.
 *
 * The paper's networks are built from CONV, ACTV, POOL and FC layers
 * (Section II-A), plus LRN (AlexNet/GoogLeNet), CONCAT (GoogLeNet
 * inception joins), DROPOUT (classifier heads) and a terminal softmax
 * loss. A LayerSpec carries the geometry needed by the performance and
 * memory models; graph structure lives in net::Network.
 *
 * Data-structure conventions reproduced from the paper:
 *  - ACTV layers are refactored in-place (footnote 1): they overwrite
 *    their input buffer and allocate no separate output; backward uses
 *    only Y and dY.
 *  - Per-layer backward needs differ by type (Section III-A): CONV/FC
 *    need X (for weight gradients) and W (for data gradients); POOL and
 *    LRN need both X and Y; ACTV needs only Y.
 */

#ifndef VDNN_DNN_LAYER_HH
#define VDNN_DNN_LAYER_HH

#include "common/types.hh"
#include "dnn/tensor.hh"

#include <cstdint>
#include <string>
#include <vector>

namespace vdnn::dnn
{

enum class LayerKind : std::uint8_t
{
    Conv,
    Activation,
    Pool,
    Fc,
    Lrn,
    Concat,
    Dropout,
    SoftmaxLoss,
};

/** Short uppercase mnemonic ("CONV", "ACTV", ...). */
const char *layerKindName(LayerKind kind);

struct ConvParams
{
    std::int64_t outChannels = 0;
    int kernelH = 3;
    int kernelW = 3;
    int strideH = 1;
    int strideW = 1;
    int padH = 0;
    int padW = 0;
};

struct PoolParams
{
    enum class Mode : std::uint8_t { Max, Avg };
    Mode mode = Mode::Max;
    int windowH = 2;
    int windowW = 2;
    int strideH = 2;
    int strideW = 2;
    int padH = 0;
    int padW = 0;
};

struct FcParams
{
    std::int64_t outFeatures = 0;
};

struct ActivationParams
{
    enum class Fn : std::uint8_t { ReLU, Sigmoid, Tanh };
    Fn fn = Fn::ReLU;
};

struct LrnParams
{
    int localSize = 5;
};

struct DropoutParams
{
    double prob = 0.5;
};

/**
 * Complete description of one layer instance: kind, geometry and
 * parameters. Only the parameter struct matching `kind` is meaningful.
 */
struct LayerSpec
{
    LayerKind kind = LayerKind::Activation;
    std::string name;
    TensorShape in;  ///< input feature map shape (X)
    TensorShape out; ///< output feature map shape (Y)

    ConvParams conv;
    PoolParams pool;
    FcParams fc;
    ActivationParams actv;
    LrnParams lrn;
    DropoutParams dropout;

    /** Weight bytes (CONV filters + bias, FC matrix + bias; else 0). */
    Bytes weightBytes() const;

    /** Number of trainable parameters. */
    std::int64_t paramCount() const;

    /** In-place layers overwrite X with Y (ACTV, DROPOUT). */
    bool inPlace() const;

    /** Does backward propagation of this layer read X? */
    bool backwardNeedsX() const;

    /** Does backward propagation of this layer read Y? */
    bool backwardNeedsY() const;

    /** Is this a feature-extraction layer (vs classifier)? vDNN manages
     *  only feature-extraction memory (Section III). */
    bool isFeatureExtraction() const;

    /** Layers with learnable weights (CONV / FC). */
    bool hasWeights() const;
};

// --- shape inference -----------------------------------------------------------

/** Output shape of a convolution over @p in. */
TensorShape convOutShape(const TensorShape &in, const ConvParams &p);

/** Output shape of a pooling window over @p in. */
TensorShape poolOutShape(const TensorShape &in, const PoolParams &p);

/** Output shape of a fully-connected layer over @p in. */
TensorShape fcOutShape(const TensorShape &in, const FcParams &p);

// --- factory helpers --------------------------------------------------------------

LayerSpec makeConv(const std::string &name, const TensorShape &in,
                   const ConvParams &p);
LayerSpec makeActivation(const std::string &name, const TensorShape &in,
                         ActivationParams::Fn fn = ActivationParams::Fn::ReLU);
LayerSpec makePool(const std::string &name, const TensorShape &in,
                   const PoolParams &p);
LayerSpec makeFc(const std::string &name, const TensorShape &in,
                 const FcParams &p);
LayerSpec makeLrn(const std::string &name, const TensorShape &in,
                  const LrnParams &p = {});
LayerSpec makeDropout(const std::string &name, const TensorShape &in,
                      double prob = 0.5);
LayerSpec makeSoftmaxLoss(const std::string &name, const TensorShape &in);
/** Concat of @p inputs along channels; all must agree on N/H/W. */
LayerSpec makeConcat(const std::string &name,
                     const std::vector<TensorShape> &inputs);

} // namespace vdnn::dnn

#endif // VDNN_DNN_LAYER_HH
